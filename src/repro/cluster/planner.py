"""Shard planners: assign every embedding key to one of ``n`` shards.

Industrial DLRM deployments split embedding tables across devices or
hosts; *how* keys are split dominates load balance and tail latency
(RecShard, AutoShard).  A :class:`ShardPlan` is the cluster-level
analogue of a page placement: it maps each key to the shard whose device
will store (and serve) it.  Three strategies are provided:

* :class:`ModuloHashPlanner` — ``key % n``, the hash baseline every
  production system starts from.  Oblivious to both skew and
  co-occurrence.
* :class:`FrequencyAwarePlanner` — RecShard-style bin packing: keys are
  sorted by trace frequency and greedily placed on the least-loaded
  shard, so hot keys spread *across* shards and no single device becomes
  the bandwidth bottleneck.
* :class:`CoOccurrencePlanner` — cuts the query hypergraph into ``n``
  blocks first (the same SHP machinery the page partitioner uses, at
  shard granularity), so co-appearing keys land on the *same* shard.
  Queries then touch fewer shards, and the per-shard SHP + replication
  pass that runs afterwards sees the full co-occurrence signal locally.

Planners only decide key → shard; the per-shard page placement is the
existing offline pipeline, re-run per shard (:mod:`.pipeline`).
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError, PartitionError
from ..hypergraph import build_weighted_hypergraph
from ..partition import ShpConfig, ShpPartitioner
from ..types import QueryTrace


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every key to one shard, with local-id remapping.

    Per-shard page layouts index keys densely from 0, so the plan keeps
    both directions of the mapping:

    * ``assignment[key]`` — the shard owning ``key``;
    * ``local_ids[key]`` — ``key``'s dense id within its shard;
    * ``shard_keys[s][local]`` — the global key back from a local id.

    Attributes:
        num_shards: shard count.
        assignment: global key → shard id.
        strategy: planner name that produced this plan (for reports).
    """

    num_shards: int
    assignment: Tuple[int, ...]
    strategy: str = "unknown"
    _local_ids: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _shard_keys: Tuple[Tuple[int, ...], ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigError(
                f"num_shards must be positive, got {self.num_shards}"
            )
        if not self.assignment:
            raise ConfigError("a shard plan must cover at least one key")
        shard_keys: List[List[int]] = [[] for _ in range(self.num_shards)]
        local_ids = []
        for key, shard in enumerate(self.assignment):
            if not 0 <= shard < self.num_shards:
                raise ConfigError(
                    f"key {key} assigned to invalid shard {shard}"
                )
            local_ids.append(len(shard_keys[shard]))
            shard_keys[shard].append(key)
        empty = [s for s, keys in enumerate(shard_keys) if not keys]
        if empty:
            raise ConfigError(
                f"shards {empty[:5]} own no keys; lower num_shards"
            )
        object.__setattr__(self, "_local_ids", tuple(local_ids))
        object.__setattr__(
            self, "_shard_keys", tuple(tuple(k) for k in shard_keys)
        )

    # -- mapping ------------------------------------------------------------

    @property
    def num_keys(self) -> int:
        """Size of the global key space."""
        return len(self.assignment)

    def shard_of(self, key: int) -> int:
        """Shard owning ``key``."""
        return self.assignment[key]

    def local_id(self, key: int) -> int:
        """``key``'s dense id within its shard."""
        return self._local_ids[key]

    def global_id(self, shard: int, local: int) -> int:
        """Global key for ``local`` id on ``shard``."""
        return self._shard_keys[shard][local]

    def shard_keys(self, shard: int) -> Tuple[int, ...]:
        """Global keys owned by ``shard``, in local-id order."""
        return self._shard_keys[shard]

    def shard_sizes(self) -> List[int]:
        """Keys per shard."""
        return [len(k) for k in self._shard_keys]

    # -- balance diagnostics ------------------------------------------------

    def size_imbalance(self) -> float:
        """Max shard key count over the mean (1.0 = perfectly even)."""
        sizes = self.shard_sizes()
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 0.0

    def load_imbalance(self, trace: QueryTrace) -> float:
        """Max over mean of per-shard *requested-key* load on ``trace``."""
        loads = self.shard_loads(trace)
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 0.0

    def shard_loads(self, trace: QueryTrace) -> List[int]:
        """Distinct-key lookups routed to each shard over ``trace``."""
        loads = [0] * self.num_shards
        for query in trace:
            for key in query.unique_keys():
                loads[self.assignment[key]] += 1
        return loads

    def mean_fanout(self, trace: QueryTrace) -> float:
        """Average number of shards one query scatters to."""
        if not len(trace):
            return 0.0
        total = 0
        for query in trace:
            total += len({self.assignment[k] for k in query.unique_keys()})
        return total / len(trace)


class ShardPlanner(ABC):
    """Strategy interface: map a trace's key space onto ``n`` shards."""

    name = "abstract"

    @abstractmethod
    def plan(self, trace: QueryTrace, num_shards: int) -> ShardPlan:
        """Assign every key in ``trace``'s universe to a shard."""

    @staticmethod
    def _check(trace: QueryTrace, num_shards: int) -> None:
        if num_shards <= 0:
            raise ConfigError(
                f"num_shards must be positive, got {num_shards}"
            )
        if num_shards > trace.num_keys:
            raise ConfigError(
                f"{num_shards} shards cannot each own a key from a "
                f"{trace.num_keys}-key table"
            )


class ModuloHashPlanner(ShardPlanner):
    """``key % n`` — the skew-oblivious hash baseline."""

    name = "modulo"

    def plan(self, trace: QueryTrace, num_shards: int) -> ShardPlan:
        self._check(trace, num_shards)
        return ShardPlan(
            num_shards,
            tuple(k % num_shards for k in range(trace.num_keys)),
            strategy=self.name,
        )


class FrequencyAwarePlanner(ShardPlanner):
    """Greedy frequency bin packing: hot keys spread across shards.

    Keys are sorted by descending trace frequency and assigned one by one
    to the shard with the least accumulated frequency (ties broken by
    shard id, keys capped at ``ceil(num_keys / n)`` per shard so the
    storage footprint stays balanced too).  This is the classic LPT
    schedule RecShard applies at table granularity, here at key
    granularity.
    """

    name = "frequency"

    def plan(self, trace: QueryTrace, num_shards: int) -> ShardPlan:
        self._check(trace, num_shards)
        freq = [0] * trace.num_keys
        for query in trace:
            for key in query.unique_keys():
                freq[key] += 1
        capacity = math.ceil(trace.num_keys / num_shards)
        order = sorted(range(trace.num_keys), key=lambda k: (-freq[k], k))
        # (accumulated load, shard id) min-heap; full shards drop out.
        heap = [(0, s) for s in range(num_shards)]
        heapq.heapify(heap)
        sizes = [0] * num_shards
        assignment = [0] * trace.num_keys
        for key in order:
            load, shard = heapq.heappop(heap)
            assignment[key] = shard
            sizes[shard] += 1
            if sizes[shard] < capacity:
                heapq.heappush(heap, (load + freq[key], shard))
        return ShardPlan(num_shards, tuple(assignment), strategy=self.name)


class CoOccurrencePlanner(ShardPlanner):
    """Cut the query hypergraph into shards before per-shard placement.

    Runs the SHP bisection machinery with ``num_clusters = n`` and a
    per-shard key capacity of ``ceil(num_keys / n)``: co-appearing keys
    stay on one shard, so queries scatter to fewer devices and the
    per-shard SHP + replication pass keeps its co-occurrence signal
    local (replica pages never straddle shards by construction).
    """

    name = "cooccurrence"

    def __init__(self, shp: "ShpConfig | None" = None, seed: int = 0) -> None:
        self.shp = shp or ShpConfig(seed=seed)

    def plan(self, trace: QueryTrace, num_shards: int) -> ShardPlan:
        self._check(trace, num_shards)
        if num_shards == 1:
            return ShardPlan(
                1, (0,) * trace.num_keys, strategy=self.name
            )
        graph = build_weighted_hypergraph(trace)
        capacity = math.ceil(trace.num_keys / num_shards)
        result = ShpPartitioner(self.shp).partition(
            graph, capacity, num_clusters=num_shards
        )
        assignment = list(result.assignment)
        used = sorted(set(assignment))
        if len(used) < num_shards:  # pragma: no cover - SHP fills all blocks
            raise PartitionError(
                f"co-occurrence cut produced {len(used)} non-empty shards "
                f"of {num_shards}"
            )
        return ShardPlan(num_shards, tuple(assignment), strategy=self.name)


SHARD_STRATEGIES = ("modulo", "frequency", "cooccurrence")


def make_planner(
    strategy: str, seed: int = 0, shp: "ShpConfig | None" = None
) -> ShardPlanner:
    """Instantiate a planner by strategy name."""
    if strategy == "modulo":
        return ModuloHashPlanner()
    if strategy == "frequency":
        return FrequencyAwarePlanner()
    if strategy == "cooccurrence":
        return CoOccurrencePlanner(shp=shp, seed=seed)
    raise ConfigError(
        f"unknown shard strategy {strategy!r}; "
        f"choose from {SHARD_STRATEGIES}"
    )
