"""Exception hierarchy for the MaxEmbed reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subclasses are split
by subsystem to keep error handling precise without forcing users to
import deep modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied (bad ratio, size, …)."""


class HypergraphError(ReproError):
    """Structural problem with a hypergraph (unknown vertex, empty edge, …)."""


class PartitionError(ReproError):
    """A partitioner produced or received an invalid partition."""


class PlacementError(ReproError):
    """A page layout or index violates its invariants."""


class StorageError(ReproError):
    """The simulated SSD rejected a request (bad page id, closed device, …)."""


class DeviceInterfaceError(StorageError):
    """A device wrapper was mounted over an incompatible inner device.

    Raised at *mount* time (wrapper construction), not mid-query: e.g.
    :class:`~repro.faults.device.FaultySsd` around an object that lacks
    the batched command interface (``submit_batch``).
    """


class DeviceFault(StorageError):
    """An injected device fault: a read failed, timed out, or corrupted.

    Carries enough context for retry/recovery machinery to account the
    failure in simulated time:

    Attributes:
        page_id: the page whose read faulted.
        kind: fault taxonomy — ``"read_error"`` (transient command
            failure), ``"dead_page"`` (persistent media failure),
            ``"brownout"`` (device-wide unavailability window), or
            ``"corrupt"`` (payload failed its integrity check).
        failed_at_us: simulated time at which the failure was observed;
            callers resume their clock from here before retrying.
    """

    def __init__(
        self,
        message: str,
        *,
        page_id: "int | None" = None,
        kind: str = "read_error",
        failed_at_us: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.kind = kind
        self.failed_at_us = failed_at_us


class CorruptArtifactError(PlacementError, ConfigError):
    """A persisted artifact failed its integrity check.

    Raised when a checksummed artifact (layout, index bundle, store
    bundle, sharded layout) is truncated, bit-flipped, or carries the
    wrong magic/version.  Subclasses both :class:`PlacementError` and
    :class:`ConfigError` so pre-checksum call sites that catch those
    (layout loads / bundle loads respectively) keep working unchanged.
    """


class CacheError(ReproError):
    """The DRAM cache was misused (non-positive capacity, …)."""


class ServingError(ReproError):
    """The online serving engine could not satisfy a query."""


class ShardUnavailableError(ServingError):
    """A cluster shard failed hard while serving a scattered fragment.

    Attributes:
        shard: id of the failing shard.
    """

    def __init__(self, message: str, *, shard: "int | None" = None) -> None:
        super().__init__(message)
        self.shard = shard


class ReplicaFault(ServingError):
    """An injected replica-level fault (crash window or flap draw).

    Raised by a :class:`~repro.cluster.replicas.ReplicaGroup` attempt
    when the :class:`~repro.faults.ShardFaultPlan` says the targeted
    replica is down; the group's failover loop catches it and retries
    on the next-healthiest replica.

    Attributes:
        shard: logical shard the replica belongs to.
        replica: replica index within the group.
        kind: ``"crash"`` (inside a crash window) or ``"flap"``
            (per-dispatch transient failure).
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int = 0,
        replica: int = 0,
        kind: str = "crash",
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.replica = replica
        self.kind = kind


class ReplicaExhaustedError(ServingError):
    """Every replica of a shard failed to serve a fragment.

    The replica group's failover loop ran out of candidates: each
    live replica either raised or blew the per-attempt deadline.  The
    router maps this onto the existing shard-grain outcome taxonomy
    (``kind == "timeout"`` → ``SHARD_TIMEOUT``, else ``SHARD_ERROR``).

    Attributes:
        shard: logical shard whose group was exhausted.
        kind: ``"timeout"`` when every attempt timed out, ``"error"``
            otherwise.
        attempts: replicas tried before giving up.
        elapsed_us: simulated time burned across the failed attempts
            (deadline waits; instant-failure attempts cost nothing).
    """

    def __init__(
        self,
        message: str,
        *,
        shard: "int | None" = None,
        kind: str = "error",
        attempts: int = 0,
        elapsed_us: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.kind = kind
        self.attempts = attempts
        self.elapsed_us = elapsed_us


class RefreshError(ServingError):
    """A refresh-daemon repair step failed (rebuild, staging, or swap).

    Attributes:
        stage: where the failure happened — ``"rebuild"``, ``"stage"``
            (artifact staging / CRC validation), or ``"swap"``.
    """

    def __init__(self, message: str, *, stage: str = "rebuild") -> None:
        super().__init__(message)
        self.stage = stage


class WorkloadError(ReproError):
    """A trace or synthetic workload specification is invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
