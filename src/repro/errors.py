"""Exception hierarchy for the MaxEmbed reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subclasses are split
by subsystem to keep error handling precise without forcing users to
import deep modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied (bad ratio, size, …)."""


class HypergraphError(ReproError):
    """Structural problem with a hypergraph (unknown vertex, empty edge, …)."""


class PartitionError(ReproError):
    """A partitioner produced or received an invalid partition."""


class PlacementError(ReproError):
    """A page layout or index violates its invariants."""


class StorageError(ReproError):
    """The simulated SSD rejected a request (bad page id, closed device, …)."""


class CacheError(ReproError):
    """The DRAM cache was misused (non-positive capacity, …)."""


class ServingError(ReproError):
    """The online serving engine could not satisfy a query."""


class WorkloadError(ReproError):
    """A trace or synthetic workload specification is invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
