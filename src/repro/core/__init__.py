"""The MaxEmbed system facade — the paper's primary contribution, end to end.

:class:`MaxEmbedStore` is the one-stop API: feed it a historical query
trace (offline phase: SHP partition + connectivity-priority replication),
then serve live queries (online phase: one-pass selection, pipelined
simulated SSD reads, DRAM cache).
"""

from .config import MaxEmbedConfig
from .store import MaxEmbedStore, build_offline_layout
from .deploy import LayoutManager, LayoutVersion
from .persist import load_store, save_store

__all__ = [
    "MaxEmbedConfig",
    "MaxEmbedStore",
    "build_offline_layout",
    "LayoutManager",
    "LayoutVersion",
    "save_store",
    "load_store",
]
