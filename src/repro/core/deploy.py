"""Layout deployment: versioned offline results, swapped under live traffic.

The drift experiment shows MaxEmbed placements go stale; production
systems therefore re-run the offline phase periodically and swap the new
placement in.  :class:`LayoutManager` models that operational loop:

* each offline result is registered as a numbered **version**;
* ``swap`` atomically replaces the serving engine (the DRAM indexes are
  rebuilt from the new layout; the cache can be kept — keys are stable —
  or dropped to model a cold restart);
* ``staleness_probe`` measures the active placement against a recent
  traffic window so operators can trigger rebuilds on evidence instead
  of on a timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ServingError
from ..metrics import evaluate_placement
from ..placement import PageLayout
from ..serving import EngineConfig, ServingEngine
from ..types import QueryTrace


@dataclass(frozen=True)
class LayoutVersion:
    """One registered offline result."""

    version: int
    layout: PageLayout
    label: str = ""


class LayoutManager:
    """Versioned layouts with atomic engine swaps and staleness probing."""

    def __init__(
        self, layout: PageLayout, config: "EngineConfig | None" = None
    ) -> None:
        self._config = config or EngineConfig()
        self._versions: List[LayoutVersion] = []
        self._active: Optional[int] = None
        self._engine: Optional[ServingEngine] = None
        first = self.register(layout, label="initial")
        self.swap(first.version)

    # -- registry --------------------------------------------------------------

    def register(self, layout: PageLayout, label: str = "") -> LayoutVersion:
        """Add a new offline result; returns its version record."""
        if self._versions and layout.num_keys != self._versions[0].layout.num_keys:
            raise ServingError(
                "all layout versions must cover the same key space"
            )
        version = LayoutVersion(len(self._versions), layout, label)
        self._versions.append(version)
        return version

    def versions(self) -> List[LayoutVersion]:
        """All registered versions in registration order."""
        return list(self._versions)

    @property
    def active_version(self) -> int:
        """Currently serving version number."""
        if self._active is None:
            raise ServingError("no layout has been activated")
        return self._active

    @property
    def engine(self) -> ServingEngine:
        """The live serving engine."""
        if self._engine is None:
            raise ServingError("no layout has been activated")
        return self._engine

    # -- swap ---------------------------------------------------------------------

    def swap(self, version: int, keep_cache: bool = True) -> ServingEngine:
        """Activate a registered version.

        Args:
            version: version number from :meth:`register`.
            keep_cache: carry the warm DRAM cache across the swap.  Keys
                are placement-independent, so a kept cache stays valid; a
                dropped cache models a cold restart.
        """
        if not 0 <= version < len(self._versions):
            raise ServingError(f"unknown layout version {version}")
        old_cache = self._engine.cache if self._engine is not None else None
        self._engine = ServingEngine(
            self._versions[version].layout, self._config
        )
        if keep_cache and old_cache is not None:
            self._engine.cache = old_cache
        self._active = version
        return self._engine

    # -- staleness ------------------------------------------------------------------

    def staleness_probe(
        self,
        window: QueryTrace,
        max_queries: Optional[int] = 500,
    ) -> Dict[str, float]:
        """Evaluate every registered version against a traffic window.

        Returns ``{label_or_version: effective_bandwidth}`` plus the
        active version's share of the best — a value well below 1.0 says
        a registered (presumably rebuilt) placement would serve the
        current traffic better.
        """
        if self._active is None:
            raise ServingError("no layout has been activated")
        scores: Dict[str, float] = {}
        best = 0.0
        active_score = 0.0
        for record in self._versions:
            name = record.label or f"v{record.version}"
            score = evaluate_placement(
                record.layout,
                window,
                max_queries=max_queries,
                embedding_bytes=self._config.spec.embedding_bytes,
                page_size=self._config.spec.page_size,
            ).effective_fraction()
            scores[name] = score
            best = max(best, score)
            if record.version == self._active:
                active_score = score
        scores["active_share_of_best"] = (
            active_score / best if best > 0 else 1.0
        )
        return scores
