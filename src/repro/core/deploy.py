"""Layout deployment: versioned offline results, swapped under live traffic.

The drift experiment shows MaxEmbed placements go stale; production
systems therefore re-run the offline phase periodically and swap the new
placement in.  :class:`LayoutManager` models that operational loop:

* each offline result is registered as a numbered **version**;
* ``swap`` atomically replaces the serving engine (the DRAM indexes are
  rebuilt from the new layout; the cache can be kept — keys are stable —
  or dropped to model a cold restart).  The displaced engine is closed,
  never the active one, so version churn cannot accumulate live engines;
* a **retention policy** bounds registry memory: only the last
  ``retain`` registrations plus the active version keep their layouts
  (pruning never drops the active version, and version numbers are
  monotonic across pruning);
* ``staleness_probe`` measures the active placement against a recent
  traffic window so operators can trigger rebuilds on evidence instead
  of on a timer.  Scores are cached per (version, window fingerprint),
  so a daemon probing the same window repeatedly does no repeat work;
* ``swap_events`` records every activation (from, to, cache fate) for
  the refresh daemon's audit trail.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ServingError
from ..metrics import evaluate_placement
from ..placement import PageLayout
from ..serving import EngineConfig, ServingEngine
from ..types import Query, QueryTrace

#: Default registrations kept besides the active version.
DEFAULT_RETAIN = 4

#: Probe-score cache entries kept before the oldest window is evicted.
_PROBE_CACHE_LIMIT = 512


def window_fingerprint(
    window: "QueryTrace | List[Query]", max_queries: Optional[int] = None
) -> int:
    """Cheap, order-sensitive CRC32 fingerprint of a traffic window.

    Two windows with the same fingerprint are (for probe-caching
    purposes) the same window: the fingerprint folds in every query's
    key tuple, in order, up to ``max_queries`` — exactly the prefix a
    probe evaluates.
    """
    crc = 0
    for index, query in enumerate(window):
        if max_queries is not None and index >= max_queries:
            break
        crc = zlib.crc32(repr(query.keys).encode(), crc)
    return crc


@dataclass(frozen=True)
class LayoutVersion:
    """One registered offline result."""

    version: int
    layout: PageLayout
    label: str = ""


class LayoutManager:
    """Versioned layouts with atomic engine swaps and staleness probing."""

    def __init__(
        self,
        layout: PageLayout,
        config: "EngineConfig | None" = None,
        retain: int = DEFAULT_RETAIN,
    ) -> None:
        if retain < 1:
            raise ServingError(f"retain must be >= 1, got {retain}")
        self._config = config or EngineConfig()
        self._retain = retain
        self._versions: Dict[int, LayoutVersion] = {}
        self._order: List[int] = []
        self._next_version = 0
        self._active: Optional[int] = None
        self._engine: Optional[ServingEngine] = None
        self._probe_cache: Dict[Tuple[int, int, Optional[int]], float] = {}
        self.swap_events: List[dict] = []
        first = self.register(layout, label="initial")
        self.swap(first.version)

    # -- registry --------------------------------------------------------------

    def register(self, layout: PageLayout, label: str = "") -> LayoutVersion:
        """Add a new offline result; returns its version record."""
        if self._versions:
            any_record = next(iter(self._versions.values()))
            if layout.num_keys != any_record.layout.num_keys:
                raise ServingError(
                    "all layout versions must cover the same key space"
                )
        version = LayoutVersion(self._next_version, layout, label)
        self._next_version += 1
        self._versions[version.version] = version
        self._order.append(version.version)
        self._prune()
        return version

    def _prune(self) -> None:
        """Enforce retention: last ``retain`` registrations + active."""
        keep = set(self._order[-self._retain:])
        if self._active is not None:
            keep.add(self._active)
        for number in list(self._versions):
            if number not in keep:
                del self._versions[number]
                self._order.remove(number)
                self._probe_cache = {
                    key: score
                    for key, score in self._probe_cache.items()
                    if key[0] != number
                }

    def versions(self) -> List[LayoutVersion]:
        """Retained versions in registration order (pruned ones gone)."""
        return [self._versions[number] for number in self._order]

    @property
    def retain(self) -> int:
        """Registrations kept besides the active version."""
        return self._retain

    @property
    def active_version(self) -> int:
        """Currently serving version number."""
        if self._active is None:
            raise ServingError("no layout has been activated")
        return self._active

    @property
    def engine(self) -> ServingEngine:
        """The live serving engine."""
        if self._engine is None:
            raise ServingError("no layout has been activated")
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The engine configuration every version serves under."""
        return self._config

    # -- engine facade ---------------------------------------------------------

    @property
    def forward(self):
        """Active engine's forward index (hotness scoring duck-typing)."""
        return self.engine.forward

    def serve_query(self, query, start_us: float = 0.0, degrade=None):
        """Serve through the active engine (safe across concurrent swaps).

        The engine reference is read once, so a swap that lands mid-call
        lets this query finish on the engine it started on — displaced
        engines are closed but still serve in-flight work correctly,
        which is what makes hot swaps drop zero queries.
        """
        engine = self.engine
        if degrade is None:
            return engine.serve_query(query, start_us)
        return engine.serve_query(query, start_us, degrade)

    def close(self) -> None:
        """Close the active engine (idempotent; mounted-gateway teardown)."""
        if self._engine is not None:
            self._engine.close()

    # -- swap ---------------------------------------------------------------------

    def swap(self, version: int, keep_cache: bool = True) -> ServingEngine:
        """Activate a registered version.

        Args:
            version: version number from :meth:`register`.
            keep_cache: carry the warm DRAM cache across the swap.  Keys
                are placement-independent, so a kept cache stays valid; a
                dropped cache models a cold restart.

        The replacement engine is fully built before the one-reference
        activation, so a failed build leaves the previous version
        serving.  The displaced engine is closed (idempotently) — never
        the newly active one.
        """
        record = self._versions.get(version)
        if record is None:
            raise ServingError(f"unknown layout version {version}")
        old_engine = self._engine
        old_cache = old_engine.cache if old_engine is not None else None
        replacement = ServingEngine(record.layout, self._config)
        if keep_cache and old_cache is not None:
            replacement.cache = old_cache
        self._engine = replacement
        previous, self._active = self._active, version
        if old_engine is not None:
            old_engine.close()
        self.swap_events.append(
            {
                "from": previous,
                "to": version,
                "label": record.label,
                "keep_cache": keep_cache,
            }
        )
        self._prune()
        return replacement

    # -- staleness ------------------------------------------------------------------

    def staleness_probe(
        self,
        window: QueryTrace,
        max_queries: Optional[int] = 500,
    ) -> Dict[str, float]:
        """Evaluate every *retained* version against a traffic window.

        Returns ``{label_or_version: effective_bandwidth}`` plus the
        active version's share of the best — a value well below 1.0 says
        a registered (presumably rebuilt) placement would serve the
        current traffic better.  Pruned versions are skipped (their
        layouts are gone).  Per-version scores are cached against a
        CRC32 fingerprint of the window prefix the probe evaluates, so a
        refresh daemon probing the same window repeatedly pays for each
        (version, window) pair exactly once.
        """
        if self._active is None:
            raise ServingError("no layout has been activated")
        fingerprint = window_fingerprint(window, max_queries)
        scores: Dict[str, float] = {}
        best = 0.0
        active_score = 0.0
        for record in self.versions():
            name = record.label or f"v{record.version}"
            cache_key = (record.version, fingerprint, max_queries)
            score = self._probe_cache.get(cache_key)
            if score is None:
                score = evaluate_placement(
                    record.layout,
                    window,
                    max_queries=max_queries,
                    embedding_bytes=self._config.spec.embedding_bytes,
                    page_size=self._config.spec.page_size,
                ).effective_fraction()
                if len(self._probe_cache) >= _PROBE_CACHE_LIMIT:
                    self._probe_cache.clear()
                self._probe_cache[cache_key] = score
            scores[name] = score
            best = max(best, score)
            if record.version == self._active:
                active_score = score
        scores["active_share_of_best"] = (
            active_score / best if best > 0 else 1.0
        )
        return scores

    def probe_cache_size(self) -> int:
        """Cached (version, window, cap) probe scores (introspection)."""
        return len(self._probe_cache)
