"""Persist a full MaxEmbed deployment to disk.

The offline phase is the expensive part; shipping its output between the
build job and the serving hosts needs a durable bundle.  A saved store is
a directory::

    bundle/
      config.json   — MaxEmbedConfig (spec, ratios, online knobs)
      layout.json   — the page layout (repro.placement.serialize format)
      tier.json     — optional pinned DRAM tier plan (CRC envelope)
      table.npy     — optional float32 embedding table

``save_store`` / ``load_store`` round-trip everything needed to resume
serving: the engine is rebuilt from the layout + config, and the page
store is re-materialized from the table when one is present.

Bundles are integrity-checked end to end: ``config.json`` carries a
magic/version/CRC32 envelope, ``layout.json`` is checksummed by
:func:`~repro.placement.serialize.save_layout`, and a ``manifest.json``
records the CRC32 of every binary sidecar (the embedding table), so a
truncated or bit-flipped bundle raises
:class:`~repro.errors.CorruptArtifactError` at load.  Pre-envelope
bundles still load, with an
:class:`~repro.integrity.UncheckedArtifactWarning`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ConfigError, CorruptArtifactError
from ..integrity import (
    MAGIC_BUNDLE_CONFIG,
    MAGIC_BUNDLE_MANIFEST,
    crc32_file,
    unwrap_document,
    verify_file_checksum,
    wrap_document,
)
from ..partition import ShpConfig
from ..placement import load_layout, save_layout
from ..serving import CpuCostModel
from ..ssd import PROFILES, SsdProfile
from ..tiering import load_tier_plan, save_tier_plan
from ..types import EmbeddingSpec
from .config import MaxEmbedConfig
from .store import MaxEmbedStore

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def config_to_dict(config: MaxEmbedConfig) -> dict:
    """Serialize a :class:`MaxEmbedConfig` to plain JSON-able data."""
    return {
        "version": _FORMAT_VERSION,
        "spec": {"dim": config.spec.dim, "page_size": config.spec.page_size},
        "replication_ratio": config.replication_ratio,
        "strategy": config.strategy,
        "partitioner": config.partitioner,
        "shp": {
            "max_iterations": config.shp.max_iterations,
            "min_swap_gain": config.shp.min_swap_gain,
            "kl_threshold": config.shp.kl_threshold,
            "kl_passes": config.shp.kl_passes,
            "kl_restarts": config.shp.kl_restarts,
            "seed": config.shp.seed
            if isinstance(config.shp.seed, int)
            else None,
        },
        "index_limit": config.index_limit,
        "cache_ratio": config.cache_ratio,
        "cache_policy": config.cache_policy,
        "tier_mode": config.tier_mode,
        "tier_ratio": config.tier_ratio,
        "profile": _profile_name(config.profile),
        "raid_members": config.raid_members,
        "selector": config.selector,
        "executor": config.executor,
        "threads": config.threads,
        "cost_model": {
            "sort_per_key_us": config.cost_model.sort_per_key_us,
            "candidate_examine_us": config.cost_model.candidate_examine_us,
            "step_base_us": config.cost_model.step_base_us,
            "query_base_us": config.cost_model.query_base_us,
        },
        "seed": config.seed,
    }


def _profile_name(profile: SsdProfile) -> str:
    for name, registered in PROFILES.items():
        if registered == profile:
            return name
    raise ConfigError(
        f"profile {profile.name!r} is not in the registry; "
        "only registered profiles can be persisted"
    )


def config_from_dict(data: dict) -> MaxEmbedConfig:
    """Rebuild a :class:`MaxEmbedConfig` from :func:`config_to_dict` data."""
    if data.get("version") != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported bundle version {data.get('version')!r}"
        )
    shp = data["shp"]
    cost = data["cost_model"]
    return MaxEmbedConfig(
        spec=EmbeddingSpec(**data["spec"]),
        replication_ratio=data["replication_ratio"],
        strategy=data["strategy"],
        partitioner=data["partitioner"],
        shp=ShpConfig(
            max_iterations=shp["max_iterations"],
            min_swap_gain=shp["min_swap_gain"],
            kl_threshold=shp["kl_threshold"],
            kl_passes=shp["kl_passes"],
            kl_restarts=shp["kl_restarts"],
            seed=shp["seed"] if shp["seed"] is not None else 0,
        ),
        index_limit=data["index_limit"],
        cache_ratio=data["cache_ratio"],
        cache_policy=data.get("cache_policy", "lru"),
        tier_mode=data.get("tier_mode", "lru"),
        tier_ratio=data.get("tier_ratio", 0.0),
        profile=PROFILES[data["profile"]],
        raid_members=data["raid_members"],
        selector=data["selector"],
        executor=data["executor"],
        threads=data["threads"],
        cost_model=CpuCostModel(**cost),
        seed=data["seed"],
    )


def save_store(store: MaxEmbedStore, directory: PathLike) -> Path:
    """Write a deployment bundle; returns the bundle directory."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / "config.json").write_text(
        json.dumps(
            wrap_document(MAGIC_BUNDLE_CONFIG, config_to_dict(store.config)),
            indent=2,
        )
    )
    save_layout(store.layout, path / "layout.json")
    tier_plan = store.engine.tier_plan
    if tier_plan is not None:
        save_tier_plan(tier_plan, path / "tier.json")
    sidecars = {}
    table = getattr(store, "_table", None)
    if table is not None:
        np.save(path / "table.npy", table)
        sidecars["table.npy"] = crc32_file(path / "table.npy")
    (path / "manifest.json").write_text(
        json.dumps(wrap_document(MAGIC_BUNDLE_MANIFEST, {"files": sidecars}))
    )
    return path


def load_store(directory: PathLike) -> MaxEmbedStore:
    """Rebuild a :class:`MaxEmbedStore` from a bundle directory.

    Every integrity check of the bundle runs here: the config envelope,
    the layout checksum (via :func:`~repro.placement.serialize.load_layout`)
    and the manifest's sidecar CRCs all raise
    :class:`~repro.errors.CorruptArtifactError` on mismatch.
    """
    path = Path(directory)
    config_path = path / "config.json"
    layout_path = path / "layout.json"
    if not config_path.exists() or not layout_path.exists():
        raise ConfigError(f"{path} is not a store bundle")
    try:
        document = json.loads(config_path.read_text())
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(
            f"malformed bundle config in {path}: {exc}"
        )
    document = unwrap_document(
        MAGIC_BUNDLE_CONFIG, document, source=f"bundle config {config_path}"
    )
    try:
        config = config_from_dict(document)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed bundle config in {path}: {exc}")
    layout = load_layout(layout_path)
    manifest_path = path / "manifest.json"
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CorruptArtifactError(
                f"malformed bundle manifest in {path}: {exc}"
            )
        manifest = unwrap_document(
            MAGIC_BUNDLE_MANIFEST,
            manifest,
            source=f"bundle manifest {manifest_path}",
        )
        for name, expected in manifest.get("files", {}).items():
            verify_file_checksum(
                path / name, expected, source=f"bundle {path}:"
            )
    table = None
    table_path = path / "table.npy"
    if table_path.exists():
        table = np.load(table_path)
    tier_plan = None
    tier_path = path / "tier.json"
    if tier_path.exists():
        tier_plan = load_tier_plan(tier_path)
    return MaxEmbedStore(layout, config, table=table, tier_plan=tier_plan)
