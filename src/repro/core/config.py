"""Top-level MaxEmbed configuration.

One dataclass spanning both phases, so a whole experiment is reproducible
from a single value.  Field defaults follow the paper's defaults: 64-dim
embeddings on 4 KiB pages, 10 % replication, 10 % DRAM cache, one-pass
selection with pipelined reads on a P5800X.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError
from ..overload import ADMISSION_POLICIES, AdmissionConfig
from ..partition import ShpConfig
from ..serving import CpuCostModel
from ..ssd import P5800X, SsdProfile
from ..types import EmbeddingSpec


@dataclass(frozen=True)
class MaxEmbedConfig:
    """Configuration of a full MaxEmbed deployment.

    Attributes:
        spec: embedding geometry (dim / page size → ``d``).
        replication_ratio: ``r`` — replica pages per base page.
        strategy: offline strategy: ``"maxembed"`` (connectivity-priority),
            ``"rpp"``, ``"fpr"``, or ``"none"`` (plain SHP, the Bandana
            baseline).
        partitioner: ``"shp"``, ``"multilevel"``, ``"random"``, or
            ``"vanilla"``.
        shp: SHP tuning knobs.
        index_limit: forward-index shrink ``k`` (None = full index).
        cache_ratio: DRAM cache as a fraction of the table.
        cache_policy: eviction policy (``lru``/``fifo``/``lfu``/``slru``).
        tier_mode: DRAM tier strategy: ``"lru"`` (reactive cache only,
            the historical default), ``"pinned"`` (statistical pinned
            hot set, LRU off), or ``"hybrid"`` (pinned hot set plus an
            LRU front for the residue).
        tier_ratio: pinned tier size as a fraction of the table
            (ignored under ``tier_mode="lru"``).
        profile: simulated SSD profile.
        raid_members: >1 stripes over a RAID-0.
        selector / executor: online algorithms (see
            :class:`~repro.serving.EngineConfig`).
        device_command_path: how selected reads reach the device —
            ``"paged"`` (one command per page, the historical default),
            ``"batched"`` (one submitted batch per query, amortizing
            the profile's ``submit_overhead_us``), or ``"ndp"`` (one
            in-device gather command per query; non-gather profiles
            are upgraded to their NDP counterpart).
        fast_selection: serve with the array-backed fast selectors
            (outcome-identical to the reference path; ``False`` forces
            the reference set-algebra selectors).
        threads: simulated serving threads.
        scatter_workers: cluster scatter-phase selection threads (see
            :class:`~repro.serving.EngineConfig`).
        cost_model: selection CPU charges.
        num_shards: >1 splits the table across that many shards, each
            served by its own engine and device (see :mod:`repro.cluster`).
        shard_strategy: key → shard planner: ``"modulo"``,
            ``"frequency"``, or ``"cooccurrence"``.
        replicas: engines per logical shard; >1 turns on the
            health-tracked replica groups of
            :mod:`repro.cluster.replicas` (failover + hedging).
        hedge_quantile: latency quantile after which a straggling
            fragment is hedged to a second replica (``None`` disables
            hedging; requires ``replicas > 1`` to have any effect).
        hedge_budget: hedged dispatches allowed per routed fragment —
            a hard cap, not a target.
        build_workers: processes for the per-shard offline builds
            (``None`` = one per shard up to the CPU count, ``0``/``1`` =
            serial).
        offline_path: ``"fast"`` builds layouts with the array-backed
            offline pipeline (vectorized SHP + replication; bit-identical
            artifacts), ``"reference"`` forces the pure-python loops.
        offline_workers: processes for the fast path's parallel bisection
            subtrees (``None`` = one per CPU, ``0``/``1`` = serial; the
            layout is identical for every worker count).
        admission_capacity: bound on the open-loop arrival queue
            (``None`` disables admission control entirely — serving is
            bit-identical to earlier releases).
        admission_policy: shedding policy when the queue is full:
            ``"tail"``, ``"deadline"``, or ``"priority"`` (see
            :mod:`repro.overload`).
        admission_deadline_us: per-request queueing deadline; required
            by the ``"deadline"`` policy.
        brownout: enable the brownout controller, which steps queries
            down a graceful-degradation ladder under sustained pressure.
        seed: base RNG seed for every stochastic component.
    """

    spec: EmbeddingSpec = field(default_factory=EmbeddingSpec)
    replication_ratio: float = 0.10
    strategy: str = "maxembed"
    partitioner: str = "shp"
    shp: ShpConfig = field(default_factory=ShpConfig)
    index_limit: Optional[int] = None
    cache_ratio: float = 0.10
    cache_policy: str = "lru"
    tier_mode: str = "lru"
    tier_ratio: float = 0.0
    profile: SsdProfile = P5800X
    raid_members: int = 1
    selector: str = "onepass"
    fast_selection: bool = True
    executor: str = "pipelined"
    device_command_path: str = "paged"
    threads: int = 8
    scatter_workers: Optional[int] = None
    cost_model: CpuCostModel = field(default_factory=CpuCostModel)
    num_shards: int = 1
    shard_strategy: str = "cooccurrence"
    replicas: int = 1
    hedge_quantile: Optional[float] = None
    hedge_budget: float = 0.1
    build_workers: Optional[int] = None
    offline_path: str = "fast"
    offline_workers: Optional[int] = 1
    admission_capacity: Optional[int] = None
    admission_policy: str = "tail"
    admission_deadline_us: Optional[float] = None
    brownout: bool = False
    seed: int = 0

    _STRATEGIES = ("maxembed", "rpp", "fpr", "none")
    # Kept in sync with repro.tiering.TIER_MODES (tiering imports
    # placement/types only, but core already mirrors cluster constants
    # this way — see _SHARD_STRATEGIES below).
    _TIER_MODES = ("pinned", "lru", "hybrid")
    _OFFLINE_PATHS = ("fast", "reference")
    # Kept in sync with repro.ssd.commands.DEVICE_COMMAND_PATHS (same
    # one-way import rationale as the other mirrored tuples).
    _DEVICE_COMMAND_PATHS = ("paged", "batched", "ndp")
    _PARTITIONERS = ("shp", "multilevel", "random", "vanilla")
    # Kept in sync with repro.cluster.planner.SHARD_STRATEGIES (the
    # cluster package imports core, so core cannot import it back).
    _SHARD_STRATEGIES = ("modulo", "frequency", "cooccurrence")

    def __post_init__(self) -> None:
        if self.strategy not in self._STRATEGIES:
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; "
                f"choose from {self._STRATEGIES}"
            )
        if self.partitioner not in self._PARTITIONERS:
            raise ConfigError(
                f"unknown partitioner {self.partitioner!r}; "
                f"choose from {self._PARTITIONERS}"
            )
        if self.replication_ratio < 0:
            raise ConfigError(
                f"replication_ratio must be >= 0, got {self.replication_ratio}"
            )
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.replicas < 1:
            raise ConfigError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.hedge_quantile is not None and not (
            0.0 < self.hedge_quantile < 1.0
        ):
            raise ConfigError(
                f"hedge_quantile must be in (0, 1), got "
                f"{self.hedge_quantile}"
            )
        if self.hedge_budget < 0:
            raise ConfigError(
                f"hedge_budget must be >= 0, got {self.hedge_budget}"
            )
        if self.shard_strategy not in self._SHARD_STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {self.shard_strategy!r}; "
                f"choose from {self._SHARD_STRATEGIES}"
            )
        if self.build_workers is not None and self.build_workers < 0:
            raise ConfigError(
                f"build_workers must be >= 0, got {self.build_workers}"
            )
        if self.offline_path not in self._OFFLINE_PATHS:
            raise ConfigError(
                f"unknown offline path {self.offline_path!r}; "
                f"choose from {self._OFFLINE_PATHS}"
            )
        if self.offline_workers is not None and self.offline_workers < 0:
            raise ConfigError(
                f"offline_workers must be >= 0, got {self.offline_workers}"
            )
        if self.device_command_path not in self._DEVICE_COMMAND_PATHS:
            raise ConfigError(
                f"unknown device command path "
                f"{self.device_command_path!r}; "
                f"choose from {self._DEVICE_COMMAND_PATHS}"
            )
        if self.tier_mode not in self._TIER_MODES:
            raise ConfigError(
                f"unknown tier mode {self.tier_mode!r}; "
                f"choose from {self._TIER_MODES}"
            )
        if not 0.0 <= self.tier_ratio <= 1.0:
            raise ConfigError(
                f"tier_ratio must be in [0, 1], got {self.tier_ratio}"
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ConfigError(
                f"unknown admission policy {self.admission_policy!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        # Eagerly validate the knob combination (capacity bounds,
        # deadline-policy-needs-a-deadline) at config construction.
        self.admission_config()

    def admission_config(self) -> Optional[AdmissionConfig]:
        """The admission-control config, or None when disabled."""
        if self.admission_capacity is None:
            return None
        return AdmissionConfig(
            capacity=self.admission_capacity,
            policy=self.admission_policy,
            queue_deadline_us=self.admission_deadline_us,
        )

    @property
    def page_capacity(self) -> int:
        """``d`` — embeddings per SSD page under this spec."""
        return self.spec.slots_per_page
