"""MaxEmbedStore: the end-to-end embedding store.

Offline: build a replicated page layout from a historical trace.
Online:  serve queries through cache → one-pass selection → simulated SSD,
optionally returning real embedding vectors from a byte-accurate page
store (the DLRM inference path).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigError, ServingError
from ..hypergraph import build_weighted_hypergraph
from ..partition import (
    FastShpPartitioner,
    MultilevelPartitioner,
    Partitioner,
    RandomPartitioner,
    ShpPartitioner,
    VanillaPlacement,
)
from ..placement import PageLayout, layout_from_partition
from ..replication import (
    ConnectivityPriorityStrategy,
    FprStrategy,
    RppStrategy,
)
from ..serving import EngineConfig, QueryResult, ServingEngine, ServingReport
from ..ssd.page_store import extract_embedding, materialize_layout
from ..tiering import TierPlan, plan_tier_from_trace
from ..types import Query, QueryTrace
from .config import MaxEmbedConfig


def _make_partitioner(config: MaxEmbedConfig) -> Partitioner:
    if config.partitioner == "shp":
        if config.offline_path == "fast":
            return FastShpPartitioner(
                config.shp, workers=config.offline_workers
            )
        return ShpPartitioner(config.shp)
    if config.partitioner == "multilevel":
        return MultilevelPartitioner()
    if config.partitioner == "random":
        return RandomPartitioner(seed=config.seed)
    return VanillaPlacement()


def build_offline_layout(
    trace: QueryTrace, config: "MaxEmbedConfig | None" = None
) -> PageLayout:
    """Run the offline phase: hypergraph → partition → replication → layout.

    This is the paper's Figure 4 left half as one call.  With
    ``strategy="none"`` it reproduces the Bandana baseline (plain SHP,
    no replicas); ``partitioner="vanilla"`` with ``strategy="none"``
    reproduces the vanilla sequential placement.

    ``config.offline_path`` selects the implementation:  ``"fast"``
    (default) partitions and replicates over CSR pin arrays —
    bit-identical layouts, fraction of the build time — while
    ``"reference"`` keeps the pure-python loops of the paper
    pseudo-code.
    """
    config = config or MaxEmbedConfig()
    graph = build_weighted_hypergraph(trace)
    partitioner = _make_partitioner(config)
    capacity = config.page_capacity
    fast = config.offline_path == "fast"
    if config.strategy == "none" or config.replication_ratio == 0:
        return layout_from_partition(partitioner.partition(graph, capacity))
    if config.strategy == "maxembed":
        strategy = ConnectivityPriorityStrategy(partitioner, fast=fast)
    elif config.strategy == "rpp":
        strategy = RppStrategy(partitioner)
    else:  # fpr
        strategy = FprStrategy(partitioner)
    return strategy.build_layout(graph, capacity, config.replication_ratio)


class MaxEmbedStore:
    """A built MaxEmbed deployment: layout + online serving engine."""

    def __init__(
        self,
        layout: PageLayout,
        config: "MaxEmbedConfig | None" = None,
        table: "np.ndarray | None" = None,
        tier_plan: "TierPlan | None" = None,
    ) -> None:
        """Wrap an existing layout.  Prefer :meth:`build` for the full flow.

        Args:
            layout: offline placement.
            config: deployment configuration.
            table: optional ``(num_keys, dim)`` float32 embedding table;
                when given, page payloads are materialized and
                :meth:`lookup` can return real vectors.
            tier_plan: optional pre-computed DRAM tier plan; without one
                a ``pinned``/``hybrid`` ``config.tier_mode`` derives a
                replica-count plan from the layout.
        """
        self.config = config or MaxEmbedConfig()
        self.layout = layout
        self.engine = ServingEngine(
            layout,
            EngineConfig(
                spec=self.config.spec,
                profile=self.config.profile,
                cache_ratio=self.config.cache_ratio,
                cache_policy=self.config.cache_policy,
                tier_mode=self.config.tier_mode,
                tier_ratio=self.config.tier_ratio,
                tier_plan=tier_plan,
                index_limit=self.config.index_limit,
                selector=self.config.selector,
                fast_selection=self.config.fast_selection,
                executor=self.config.executor,
                device_command_path=self.config.device_command_path,
                threads=self.config.threads,
                scatter_workers=self.config.scatter_workers,
                raid_members=self.config.raid_members,
                cost_model=self.config.cost_model,
            ),
        )
        self._table = None
        self._page_store = None
        if table is not None:
            self.attach_table(table)

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        trace: QueryTrace,
        config: "MaxEmbedConfig | None" = None,
        table: "np.ndarray | None" = None,
    ) -> "MaxEmbedStore":
        """Offline phase + engine in one call.

        With a ``pinned``/``hybrid`` ``config.tier_mode`` the tier plan
        is derived *statistically* from the same historical trace that
        drove placement (hotness counts break ties by replica counts),
        so the DRAM hot set is decided offline, not reactively.
        """
        config = config or MaxEmbedConfig()
        layout = build_offline_layout(trace, config)
        tier_plan = None
        if config.tier_mode != "lru" and config.tier_ratio > 0:
            tier_plan = plan_tier_from_trace(layout, trace, config.tier_ratio)
        return cls(layout, config, table, tier_plan=tier_plan)

    def attach_table(self, table: np.ndarray) -> None:
        """Materialize real embedding vectors onto the simulated pages."""
        table = np.ascontiguousarray(table, dtype=np.float32)
        if table.shape != (self.layout.num_keys, self.config.spec.dim):
            raise ConfigError(
                f"table shape {table.shape} != "
                f"({self.layout.num_keys}, {self.config.spec.dim})"
            )
        self._table = table
        self._page_store, self._page_keys = materialize_layout(
            self.layout, table, self.config.spec
        )

    # -- serving -------------------------------------------------------------------

    def serve(self, query: Query, start_us: float = 0.0) -> QueryResult:
        """Serve one query (timing only)."""
        return self.engine.serve_query(query, start_us)

    def serve_trace(
        self, trace: "QueryTrace", warmup_queries: int = 0
    ) -> ServingReport:
        """Serve a whole trace with the closed-loop simulator."""
        return self.engine.serve_trace(trace, warmup_queries=warmup_queries)

    def lookup(self, query: Query) -> Dict[int, np.ndarray]:
        """Serve a query and return the actual embedding vectors.

        Requires an attached table.  Vectors for cache hits come straight
        from the table (they were admitted after an earlier SSD read);
        vectors for misses are sliced out of the page payloads the
        selection decided to read — exercising the byte-accurate path.
        """
        if self._page_store is None or self._table is None:
            raise ServingError(
                "no embedding table attached; call attach_table() first"
            )
        keys = query.unique_keys()
        tier = self.engine.tier
        if tier is not None:
            # Pinned-tier keys live in DRAM permanently: serve them from
            # the table without touching the cache or the SSD.
            tier_keys, keys = tier.split(keys)
        else:
            tier_keys = []
        hits, misses = self.engine.cache.filter_hits(keys)
        vectors: Dict[int, np.ndarray] = {
            k: self._table[k].copy() for k in tier_keys
        }
        for k in hits:
            vectors[k] = self._table[k].copy()
        if misses:
            outcome = self.engine.selector.select(misses)
            wanted = set(misses)
            for step in outcome.steps:
                payload = self._page_store.read_page(step.page_id)
                for key in step.covered:
                    if key in wanted:
                        vec = extract_embedding(
                            payload,
                            self._page_keys[step.page_id],
                            key,
                            self.config.spec,
                        )
                        if vec is None:  # pragma: no cover - layout invariant
                            raise ServingError(
                                f"key {key} missing from page {step.page_id}"
                            )
                        vectors[key] = vec
                        wanted.discard(key)
            self.engine.cache.admit(misses)
            if wanted:  # pragma: no cover - selection guarantees coverage
                raise ServingError(f"keys {sorted(wanted)[:5]} not served")
        return vectors

    # -- accounting ---------------------------------------------------------------

    def storage_overhead(self) -> float:
        """Extra SSD space versus an unreplicated layout (the paper's r)."""
        return self.layout.extra_page_ratio()

    def memory_overhead_entries(self) -> int:
        """DRAM index entries (forward + invert, §7.1)."""
        return self.engine.memory_overhead_entries()
