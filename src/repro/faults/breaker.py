"""Per-shard circuit breaker for degraded scatter-gather serving.

Classic three-state breaker (closed → open → half-open → closed), driven
entirely by *simulated* time so trace replays are deterministic:

* **closed** — requests flow; ``failure_threshold`` consecutive failures
  trip the breaker open;
* **open** — requests are rejected without touching the shard; after
  ``recovery_timeout_us`` of simulated time the next request is allowed
  through as a probe (the breaker moves to half-open);
* **half-open** — ``half_open_probes`` consecutive successes close the
  breaker; any failure re-opens it and restarts the recovery timer.

Every transition is recorded with its simulated timestamp, giving the
cluster report a full breaker history per shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one circuit breaker.

    Attributes:
        failure_threshold: consecutive failures that trip a closed
            breaker open.
        recovery_timeout_us: simulated time an open breaker waits before
            letting a probe through.
        half_open_probes: consecutive successes needed to close a
            half-open breaker.
    """

    failure_threshold: int = 3
    recovery_timeout_us: float = 50_000.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.recovery_timeout_us < 0:
            raise ConfigError(
                f"recovery_timeout_us must be >= 0, got "
                f"{self.recovery_timeout_us}"
            )
        if self.half_open_probes < 1:
            raise ConfigError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change."""

    at_us: float
    from_state: str
    to_state: str


class CircuitBreaker:
    """Deterministic three-state circuit breaker on simulated time."""

    def __init__(self, config: "BreakerConfig | None" = None) -> None:
        self.config = config or BreakerConfig()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._opened_at_us = 0.0
        self.transitions: List[BreakerTransition] = []

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half_open``."""
        return self._state

    def _transition(self, to_state: str, now_us: float) -> None:
        self.transitions.append(
            BreakerTransition(now_us, self._state, to_state)
        )
        self._state = to_state

    # -- request gating --------------------------------------------------------

    def allow(self, now_us: float) -> bool:
        """May a request be sent at ``now_us``?

        An open breaker whose recovery timeout has elapsed transitions
        to half-open and admits the request as a probe.
        """
        if self._state == OPEN:
            elapsed = now_us - self._opened_at_us
            if elapsed >= self.config.recovery_timeout_us:
                self._half_open_successes = 0
                self._transition(HALF_OPEN, now_us)
                return True
            return False
        return True

    # -- outcome reporting -----------------------------------------------------

    def record_success(self, now_us: float) -> None:
        """Report a successful request outcome."""
        if self._state == HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.config.half_open_probes:
                self._consecutive_failures = 0
                self._transition(CLOSED, now_us)
        else:
            self._consecutive_failures = 0

    def record_failure(self, now_us: float) -> None:
        """Report a failed request outcome (timeout, fault, exception)."""
        if self._state == HALF_OPEN:
            self._opened_at_us = now_us
            self._transition(OPEN, now_us)
            return
        if self._state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._opened_at_us = now_us
                self._transition(OPEN, now_us)
