"""Deterministic fault schedules for the refresh daemon's repair paths.

The device-level :class:`~repro.faults.FaultPlan` injects faults into
*reads*; a refresh daemon has two more places to die — the offline
**rebuild** (a build crashes, or the staged artifact is torn/corrupted
on disk) and the **swap** (the process fails between installing a new
engine and committing the activation).  :class:`RefreshFaultPlan`
schedules those, with the same determinism contract as the device plan:
every draw is a pure function of (seed, salt, attempt coordinates), so
a chaos run replays identically under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .plan import unit_draw

# Distinct salts decorrelate the per-path draws (same scheme as the
# device-plan salts in faults/plan.py).
_SALT_REBUILD = 0xBADC0DE5
_SALT_STAGE = 0x70A57ED1
_SALT_SWAP = 0x51AB5EED

_RATE_FIELDS = (
    "rebuild_failure_rate",
    "corrupt_artifact_rate",
    "swap_failure_rate",
)


@dataclass(frozen=True)
class RefreshFaultPlan:
    """A deterministic schedule of refresh-loop faults.

    Attributes:
        seed: root of every draw; identical plans inject identical fault
            sequences for identical repair attempt sequences.
        rebuild_failure_rate: per-attempt probability that an offline
            rebuild dies before producing an artifact.
        corrupt_artifact_rate: per-attempt probability that the staged
            artifact is torn on disk — the CRC validation at load time
            must catch it (the layout never reaches the engine).
        swap_failure_rate: per-attempt probability that the swap step
            fails mid-flight, after at least one engine was installed —
            the rollback path must restore the previous version.
    """

    seed: int = 0
    rebuild_failure_rate: float = 0.0
    corrupt_artifact_rate: float = 0.0
    swap_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")

    def any_faults(self) -> bool:
        """True when the plan can inject at least one fault."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def draw_rebuild_failure(self, shard: int, attempt: int) -> bool:
        """Should this rebuild attempt crash before staging?"""
        if self.rebuild_failure_rate <= 0.0:
            return False
        draw = unit_draw(self.seed, _SALT_REBUILD, shard, attempt)
        return draw < self.rebuild_failure_rate

    def draw_corrupt_artifact(self, shard: int, attempt: int) -> bool:
        """Should this attempt's staged artifact be torn on disk?"""
        if self.corrupt_artifact_rate <= 0.0:
            return False
        draw = unit_draw(self.seed, _SALT_STAGE, shard, attempt)
        return draw < self.corrupt_artifact_rate

    def draw_swap_failure(self, shard: int, attempt: int) -> bool:
        """Should this swap attempt die mid-flight?"""
        if self.swap_failure_rate <= 0.0:
            return False
        draw = unit_draw(self.seed, _SALT_SWAP, shard, attempt)
        return draw < self.swap_failure_rate
