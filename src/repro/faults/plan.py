"""Deterministic, seeded fault schedules for the simulated device layer.

A :class:`FaultPlan` is pure configuration: *what* can go wrong and how
often.  Every fault decision is a pure function of the plan's seed plus
the read's coordinates (page id, retry attempt, submission sequence), so
a given (plan, trace) pair always produces the same fault sequence —
reruns, CI seeds, and differential tests are exactly reproducible.

Fault taxonomy (mirrors what NVMe deployments actually see):

* **transient read errors** — the command fails, an immediate retry may
  succeed (media retries, link CRC errors);
* **dead pages** — a fixed subset of pages fails *every* read (grown
  media defects); only a replica on another page can serve those keys;
* **latency spikes** — the read succeeds but takes far longer than the
  service model predicts (internal GC, thermal throttling);
* **corrupted payloads** — the read "succeeds" but the data fails its
  integrity check; the full read latency was paid before discovery;
* **brown-outs** — wall-clock windows during which the whole device
  rejects every submission (controller resets, firmware stalls).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Tuple

from ..errors import ConfigError

_MASK64 = (1 << 64) - 1

# Distinct salts decorrelate the per-fault-kind draws.
_SALT_DEAD = 0xD15EA5E0
_SALT_ERROR = 0x0BADF00D
_SALT_CORRUPT = 0xC0FFEE11
_SALT_SPIKE = 0x5EED5EED

_RATE_FIELDS = (
    "read_error_rate",
    "dead_page_rate",
    "corrupt_rate",
    "latency_spike_rate",
)


def _splitmix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-mixed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def unit_draw(seed: int, salt: int, *coords: int) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, salt, coords)."""
    x = seed & _MASK64
    for c in coords:
        x = _splitmix64(x ^ ((c + salt) & _MASK64))
    return _splitmix64(x ^ salt) / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of device faults.

    Attributes:
        seed: root of every fault draw; two plans with the same fields
            inject identical fault sequences on identical workloads.
        read_error_rate: per-attempt probability of a transient read
            failure (retries re-draw and may succeed).
        dead_page_rate: fraction of page ids that fail permanently; the
            draw depends only on (seed, page id), so a dead page is dead
            for every attempt of every query.
        corrupt_rate: per-attempt probability that a read returns a
            payload failing its integrity check; the full device latency
            is paid before the corruption is discovered.
        latency_spike_rate: per-attempt probability of a slow read.
        latency_spike_us: extra completion latency of a spiked read.
        brownouts: ``(start_us, end_us)`` windows during which every
            submission to the device fails (retried reads that back off
            past the window's end succeed again).
    """

    seed: int = 0
    read_error_rate: float = 0.0
    dead_page_rate: float = 0.0
    corrupt_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_us: float = 500.0
    brownouts: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.latency_spike_us < 0:
            raise ConfigError(
                f"latency_spike_us must be >= 0, got {self.latency_spike_us}"
            )
        windows = tuple(
            (float(start), float(end)) for start, end in self.brownouts
        )
        for start, end in windows:
            if start < 0 or end <= start:
                raise ConfigError(
                    f"brownout window ({start}, {end}) must satisfy "
                    f"0 <= start < end"
                )
        object.__setattr__(self, "brownouts", windows)

    # -- queries --------------------------------------------------------------

    def any_faults(self) -> bool:
        """True when the plan can inject at least one fault."""
        return bool(self.brownouts) or any(
            getattr(self, name) > 0.0 for name in _RATE_FIELDS
        )

    def in_brownout(self, now_us: float) -> bool:
        """True when ``now_us`` falls inside a brown-out window."""
        return any(start <= now_us < end for start, end in self.brownouts)

    def brownout_end(self, now_us: float) -> float:
        """End of the window containing ``now_us`` (``now_us`` if none)."""
        for start, end in self.brownouts:
            if start <= now_us < end:
                return end
        return now_us

    def page_is_dead(self, page_id: int) -> bool:
        """Persistent-failure draw: depends only on (seed, page id)."""
        if self.dead_page_rate <= 0.0:
            return False
        return unit_draw(self.seed, _SALT_DEAD, page_id) < self.dead_page_rate

    def draw_read_error(self, page_id: int, attempt: int, seq: int) -> bool:
        """Transient-failure draw for one submission attempt."""
        if self.read_error_rate <= 0.0:
            return False
        draw = unit_draw(self.seed, _SALT_ERROR, page_id, attempt, seq)
        return draw < self.read_error_rate

    def draw_corrupt(self, page_id: int, attempt: int, seq: int) -> bool:
        """Corrupted-payload draw for one submission attempt."""
        if self.corrupt_rate <= 0.0:
            return False
        draw = unit_draw(self.seed, _SALT_CORRUPT, page_id, attempt, seq)
        return draw < self.corrupt_rate

    def draw_spike(self, page_id: int, attempt: int, seq: int) -> bool:
        """Latency-spike draw for one submission attempt."""
        if self.latency_spike_rate <= 0.0:
            return False
        draw = unit_draw(self.seed, _SALT_SPIKE, page_id, attempt, seq)
        return draw < self.latency_spike_rate

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-able representation."""
        return {
            "seed": self.seed,
            "read_error_rate": self.read_error_rate,
            "dead_page_rate": self.dead_page_rate,
            "corrupt_rate": self.corrupt_rate,
            "latency_spike_rate": self.latency_spike_rate,
            "latency_spike_us": self.latency_spike_us,
            "brownouts": [list(w) for w in self.brownouts],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown fault plan fields {unknown}")
        kwargs = dict(data)
        if "brownouts" in kwargs:
            kwargs["brownouts"] = tuple(
                tuple(w) for w in kwargs["brownouts"]
            )
        return cls(**kwargs)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse an inline ``key=value,...`` spec or a JSON file path.

        Examples::

            FaultPlan.from_spec("read_error=0.05,seed=3")
            FaultPlan.from_spec("dead_page=0.01,brownout=1000:2500")
            FaultPlan.from_spec("plans/chaos.json")

        Short rate aliases (``read_error``, ``dead_page``, ``corrupt``,
        ``latency_spike``) map to the ``*_rate`` fields; ``brownout``
        takes ``start:end`` microseconds and may repeat.
        """
        text = spec.strip()
        if not text:
            raise ConfigError("empty fault plan spec")
        path = Path(text)
        if text.endswith(".json") or path.is_file():
            try:
                return cls.from_dict(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError) as exc:
                raise ConfigError(f"cannot load fault plan {text}: {exc}")
        aliases = {
            "read_error": "read_error_rate",
            "dead_page": "dead_page_rate",
            "corrupt": "corrupt_rate",
            "latency_spike": "latency_spike_rate",
        }
        kwargs: dict = {}
        brownouts = []
        for item in text.split(","):
            if "=" not in item:
                raise ConfigError(
                    f"fault plan item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "brownout":
                start, _, end = value.partition(":")
                try:
                    brownouts.append((float(start), float(end)))
                except ValueError:
                    raise ConfigError(
                        f"brownout must be start:end, got {value!r}"
                    )
                continue
            key = aliases.get(key, key)
            field_types = {f.name: f.type for f in fields(cls)}
            if key not in field_types:
                raise ConfigError(f"unknown fault plan key {key!r}")
            try:
                kwargs[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ConfigError(
                    f"fault plan value {value!r} for {key} is not numeric"
                )
        if brownouts:
            kwargs["brownouts"] = tuple(brownouts)
        return cls(**kwargs)
