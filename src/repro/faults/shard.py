"""Deterministic fault schedules for whole shard replicas.

The device-level :class:`~repro.faults.FaultPlan` kills *reads*; the
refresh plan kills *repairs*.  With R-way replica groups there is a
third failure grain — an entire replica process/device — and the
:class:`ShardFaultPlan` schedules those: crash windows (a replica goes
dark for a stretch of simulated time), flaps (a replica that fails a
random subset of dispatches), and degrades (a replica that serves
correctly but slower, the classic gray failure hedging exists for).

The determinism contract matches the other plans: every decision is a
pure function of (seed, salt, coordinates), so a chaos run replays
identically under a fixed seed.  Crash/flap/degrade *membership* draws
key on (shard, replica) only — a crashed replica is crashed no matter
how the trace interleaves — while flap failures additionally key on the
group's dispatch sequence number.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Tuple

from ..errors import ConfigError
from .plan import unit_draw

# Distinct salts decorrelate the per-fault-kind draws (same scheme as
# the device-plan salts in faults/plan.py).
_SALT_CRASH = 0xDEADBEA7
_SALT_CRASH_AT = 0x0A11D0E5
_SALT_FLAP = 0xF1A9F1A9
_SALT_FLAP_AT = 0xF1A9A77E
_SALT_DEGRADE = 0xDE96ADE5

_RATE_FIELDS = ("crash_rate", "flap_rate", "flap_failure_rate", "degrade_rate")


@dataclass(frozen=True)
class ShardFaultPlan:
    """A deterministic schedule of replica-grain faults.

    Attributes:
        seed: root of every draw; identical plans produce identical
            fault sequences on identical dispatch sequences.
        crash_rate: fraction of (shard, replica) units that crash.  A
            crashed replica fails every dispatch inside its window.
        crash_after_us: earliest possible crash start.
        horizon_us: crash starts are drawn uniformly in
            ``[crash_after_us, horizon_us)`` — size it to the trace's
            simulated makespan so crashes land mid-serve.
        crash_duration_us: length of each crash window (``inf`` =
            the replica never comes back; resyncs keep failing their
            probes until the window ends).
        flap_rate: fraction of replicas that flap.
        flap_failure_rate: per-dispatch failure probability on a
            flapping replica.
        degrade_rate: fraction of replicas that are gray-degraded.
        degrade_factor: latency multiplier on a degraded replica
            (must be >= 1; this is the straggler hedging targets).
    """

    seed: int = 0
    crash_rate: float = 0.0
    crash_after_us: float = 0.0
    horizon_us: float = 1_000_000.0
    crash_duration_us: float = math.inf
    flap_rate: float = 0.0
    flap_failure_rate: float = 0.5
    degrade_rate: float = 0.0
    degrade_factor: float = 3.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.horizon_us <= 0:
            raise ConfigError(
                f"horizon_us must be positive, got {self.horizon_us}"
            )
        if not 0.0 <= self.crash_after_us < self.horizon_us:
            raise ConfigError(
                f"crash_after_us must be in [0, horizon_us), got "
                f"{self.crash_after_us}"
            )
        if self.crash_duration_us <= 0:
            raise ConfigError(
                f"crash_duration_us must be positive, got "
                f"{self.crash_duration_us}"
            )
        if self.degrade_factor < 1.0:
            raise ConfigError(
                f"degrade_factor must be >= 1, got {self.degrade_factor}"
            )

    # -- queries --------------------------------------------------------------

    def any_faults(self) -> bool:
        """True when the plan can inject at least one fault."""
        return (
            self.crash_rate > 0.0
            or (self.flap_rate > 0.0 and self.flap_failure_rate > 0.0)
            or self.degrade_rate > 0.0
        )

    def crash_window(
        self, shard: int, replica: int
    ) -> Optional[Tuple[float, float]]:
        """The replica's ``(start_us, end_us)`` crash window, or None."""
        if self.crash_rate <= 0.0:
            return None
        if unit_draw(self.seed, _SALT_CRASH, shard, replica) >= self.crash_rate:
            return None
        span = self.horizon_us - self.crash_after_us
        start = self.crash_after_us + span * unit_draw(
            self.seed, _SALT_CRASH_AT, shard, replica
        )
        return start, start + self.crash_duration_us

    def crashed(self, shard: int, replica: int, now_us: float) -> bool:
        """True when ``now_us`` falls inside the replica's crash window."""
        window = self.crash_window(shard, replica)
        if window is None:
            return False
        start, end = window
        return start <= now_us < end

    def draw_flap(self, shard: int, replica: int, seq: int) -> bool:
        """Transient-failure draw for one dispatch on a flapping replica."""
        if self.flap_rate <= 0.0 or self.flap_failure_rate <= 0.0:
            return False
        if unit_draw(self.seed, _SALT_FLAP, shard, replica) >= self.flap_rate:
            return False
        draw = unit_draw(self.seed, _SALT_FLAP_AT, shard, replica, seq)
        return draw < self.flap_failure_rate

    def degrade_multiplier(self, shard: int, replica: int) -> float:
        """Latency multiplier for this replica (1.0 = not degraded)."""
        if self.degrade_rate <= 0.0:
            return 1.0
        draw = unit_draw(self.seed, _SALT_DEGRADE, shard, replica)
        return self.degrade_factor if draw < self.degrade_rate else 1.0

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-able representation (``inf`` durations as null)."""
        duration = (
            None
            if math.isinf(self.crash_duration_us)
            else self.crash_duration_us
        )
        return {
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "crash_after_us": self.crash_after_us,
            "horizon_us": self.horizon_us,
            "crash_duration_us": duration,
            "flap_rate": self.flap_rate,
            "flap_failure_rate": self.flap_failure_rate,
            "degrade_rate": self.degrade_rate,
            "degrade_factor": self.degrade_factor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown shard fault plan fields {unknown}")
        kwargs = dict(data)
        if kwargs.get("crash_duration_us") is None:
            kwargs.pop("crash_duration_us", None)
        return cls(**kwargs)

    @classmethod
    def from_spec(cls, spec: str) -> "ShardFaultPlan":
        """Parse an inline ``key=value,...`` spec or a JSON file path.

        Examples::

            ShardFaultPlan.from_spec("crash=0.1,horizon_us=200000")
            ShardFaultPlan.from_spec("flap=0.25,seed=3")
            ShardFaultPlan.from_spec("plans/replica-chaos.json")

        Short aliases ``crash``, ``flap``, ``degrade`` map to the
        ``*_rate`` fields.
        """
        text = spec.strip()
        if not text:
            raise ConfigError("empty shard fault plan spec")
        path = Path(text)
        if text.endswith(".json") or path.is_file():
            try:
                return cls.from_dict(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError) as exc:
                raise ConfigError(
                    f"cannot load shard fault plan {text}: {exc}"
                )
        aliases = {
            "crash": "crash_rate",
            "flap": "flap_rate",
            "degrade": "degrade_rate",
        }
        field_names = {f.name for f in fields(cls)}
        kwargs: dict = {}
        for item in text.split(","):
            if "=" not in item:
                raise ConfigError(
                    f"shard fault plan item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = aliases.get(key.strip(), key.strip())
            value = value.strip()
            if key not in field_names:
                raise ConfigError(f"unknown shard fault plan key {key!r}")
            try:
                kwargs[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ConfigError(
                    f"shard fault plan value {value!r} for {key} is not "
                    f"numeric"
                )
        return cls(**kwargs)
