"""Fault-domain resilience: deterministic injection, faulty devices, breakers.

MaxEmbed's selective replication means every hot key lives on multiple
pages — which is exactly the redundancy a serving stack needs to survive
device faults.  This package supplies the failure model:

* :class:`FaultPlan` — a seeded, fully deterministic schedule of read
  errors, dead pages, corrupted payloads, latency spikes and brown-outs;
* :class:`FaultInjector` — the stateful driver turning a plan into
  per-submission :class:`FaultDecision`\\ s, with observability counters;
* :class:`FaultySsd` — a drop-in wrapper over any simulated page device
  that injects the plan at the submit/poll boundary;
* :class:`CircuitBreaker` — the per-shard closed/open/half-open gate the
  cluster router uses for degraded scatter-gather;
* :class:`ShardFaultPlan` — seeded replica-grain crash/flap/degrade
  schedules driving the replica-group chaos suite.

Recovery itself (retries with backoff, replica-aware re-selection) lives
in :mod:`repro.serving.recovery`, next to the executors it mirrors.
"""

from .breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from .device import FaultySsd
from .injector import FaultDecision, FaultInjector
from .plan import FaultPlan
from .refresh import RefreshFaultPlan
from .shard import ShardFaultPlan

__all__ = [
    "FaultPlan",
    "RefreshFaultPlan",
    "ShardFaultPlan",
    "FaultInjector",
    "FaultDecision",
    "FaultySsd",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
