"""A fault-injecting wrapper around the simulated SSD.

:class:`FaultySsd` exposes the exact submit/poll interface of
:class:`~repro.ssd.device.SimulatedSsd` (and of
:class:`~repro.ssd.raid.Raid0Array` — any page-device works), so every
executor and engine runs against it unchanged.  Each submission is first
routed through a :class:`~repro.faults.injector.FaultInjector`:

* failed submissions (transient errors, dead pages, brown-outs) raise
  :class:`~repro.errors.DeviceFault` with the simulated time at which
  the failure was observed — the device-latency cost of discovering a
  failure is charged to the caller's clock, not silently dropped;
* corrupted reads complete normally (the transfer happened and consumed
  device bandwidth); :meth:`is_corrupt` exposes the integrity-check
  verdict the caller must consult before trusting the payload;
* latency spikes stretch the read's completion time; the wrapper holds
  spiked completions back from :meth:`poll` until their adjusted time.

With a no-op plan the wrapper is pass-through: every call delegates to
the inner device and timing is bit-identical to running without it.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Dict, List, Optional, Set

from ..errors import DeviceFault, DeviceInterfaceError
from ..ssd.commands import DeviceCommand, GatherCommand, ReadCommand
from ..ssd.device import Completion, DeviceStats
from .injector import (
    BROWNOUT,
    CORRUPT,
    LATENCY_SPIKE,
    FaultInjector,
    SUBMIT_FAILURES,
)
from .plan import FaultPlan


class FaultySsd:
    """Fault-injecting façade over any simulated page device."""

    def __init__(self, inner, injector: "FaultInjector | FaultPlan") -> None:
        if not hasattr(inner, "submit_batch"):
            raise DeviceInterfaceError(
                f"FaultySsd requires a device exposing the batched command "
                f"interface (submit_batch); "
                f"{type(inner).__name__} does not — wrap a SimulatedSsd or "
                f"Raid0Array, not a bare stub"
            )
        if isinstance(injector, FaultPlan):
            injector = FaultInjector(injector)
        self._inner = inner
        self.injector = injector
        self._corrupt_tickets: Set[int] = set()
        # Spiked completions: ticket -> adjusted Completion, plus a heap
        # of adjusted completions already retired by the inner device but
        # not yet due at their stretched time.
        self._spiked: Dict[int, Completion] = {}
        self._held: List = []

    # -- passthrough surface ---------------------------------------------------

    @property
    def profile(self):
        """The inner device's profile."""
        return self._inner.profile

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._inner.page_size

    @property
    def queue_depth(self) -> int:
        """Submission-queue capacity of the inner device."""
        return self._inner.queue_depth

    @property
    def inflight(self) -> int:
        """Reads submitted but not yet retired (held spikes included)."""
        return self._inner.inflight + len(self._held)

    @property
    def submit_overhead_us(self) -> float:
        """Host CPU per submitted command (inner device's figure)."""
        return getattr(self._inner, "submit_overhead_us", 0.0)

    @property
    def stats(self) -> DeviceStats:
        """The inner device's counters (successful transfers only)."""
        return self._inner.stats

    def reset_stats(self) -> None:
        """Zero the inner device's counters."""
        self._inner.reset_stats()

    def delivered_bandwidth_gb_s(self, elapsed_us: float) -> float:
        """Raw transfer rate achieved over ``elapsed_us`` (GB/s)."""
        return self._inner.delivered_bandwidth_gb_s(elapsed_us)

    # -- fault bookkeeping -----------------------------------------------------

    @property
    def fault_counters(self) -> Dict[str, int]:
        """Per-kind injected fault counts."""
        return dict(self.injector.counters)

    def is_corrupt(self, completion: Completion) -> bool:
        """Integrity-check verdict for a returned completion.

        The check is consumed: a retried read of the same page is a new
        submission with its own draw.
        """
        if completion.ticket in self._corrupt_tickets:
            self._corrupt_tickets.discard(completion.ticket)
            return True
        return False

    # -- submit / poll ---------------------------------------------------------

    def submit_read(
        self, page_id: int, now_us: float, attempt: int = 0
    ) -> Completion:
        """Submit one read; raises :class:`DeviceFault` on injected failure.

        ``attempt`` is the caller's retry counter for this logical read;
        it feeds the per-attempt fault draws so retries of a transient
        failure can succeed while dead pages stay dead.
        """
        decision = self.injector.decide(page_id, now_us, attempt)
        if decision.kind in SUBMIT_FAILURES:
            if decision.kind == BROWNOUT:
                # The controller is unresponsive for the whole window; a
                # retry can only succeed once it ends.
                failed_at = max(now_us, decision.retry_at_us)
            else:
                # The command completed with an error status after the
                # device's ordinary latency.
                failed_at = now_us + self.profile.read_latency_us
            raise DeviceFault(
                f"injected {decision.kind} on page {page_id} "
                f"(attempt {attempt})",
                page_id=page_id,
                kind=decision.kind,
                failed_at_us=failed_at,
            )
        completion = self._inner.submit_read(page_id, now_us)
        if decision.kind == CORRUPT:
            self._corrupt_tickets.add(completion.ticket)
            return completion
        if decision.kind == LATENCY_SPIKE:
            adjusted = replace(
                completion,
                completed_at_us=completion.completed_at_us
                + decision.extra_latency_us,
            )
            self._spiked[completion.ticket] = adjusted
            return adjusted
        return completion

    def submit_gather(
        self, command: GatherCommand, now_us: float, attempt: int = 0
    ) -> Completion:
        """Submit an in-device gather with per-page fault draws.

        Each of the gather's pages gets its own injector draw (in page
        order), so fault exposure matches the per-page read path:

        * the first submit-failure draw aborts the *whole* gather — one
          command, one error status — and raises :class:`DeviceFault`
          for that page;
        * any corrupt draw poisons the merged completion (the integrity
          check covers the full gathered payload);
        * latency-spike draws stretch the completion by the largest
          spike among the pages.
        """
        failure = None
        corrupt = False
        extra_latency = 0.0
        for page_id in command.page_ids:
            decision = self.injector.decide(page_id, now_us, attempt)
            if decision.kind in SUBMIT_FAILURES:
                if decision.kind == BROWNOUT:
                    failed_at = max(now_us, decision.retry_at_us)
                else:
                    failed_at = now_us + self.profile.read_latency_us
                failure = DeviceFault(
                    f"injected {decision.kind} on page {page_id} "
                    f"(gather of {command.num_pages}, attempt {attempt})",
                    page_id=page_id,
                    kind=decision.kind,
                    failed_at_us=failed_at,
                )
                break
            if decision.kind == CORRUPT:
                corrupt = True
            elif decision.kind == LATENCY_SPIKE:
                extra_latency = max(
                    extra_latency, decision.extra_latency_us
                )
        if failure is not None:
            raise failure
        completion = self._inner.submit_gather(command, now_us)
        if corrupt:
            self._corrupt_tickets.add(completion.ticket)
        if extra_latency > 0.0:
            adjusted = replace(
                completion,
                completed_at_us=completion.completed_at_us + extra_latency,
            )
            self._spiked[completion.ticket] = adjusted
            return adjusted
        return completion

    def submit_batch(
        self,
        commands: "list[DeviceCommand]",
        now_us: float,
        attempt: int = 0,
    ) -> "List[Completion | DeviceFault]":
        """Submit a command batch; faults are *returned*, not raised.

        One entry per command, in order: a :class:`Completion` where the
        submission succeeded, the :class:`DeviceFault` itself where the
        injector failed it.  Returning faults inline keeps the rest of
        the batch flowing — the caller retries the failed commands
        individually (starting at ``attempt + 1``; this batch consumed
        the per-page draws for ``attempt``).
        """
        results: "List[Completion | DeviceFault]" = []
        for command in commands:
            try:
                if isinstance(command, ReadCommand):
                    results.append(
                        self.submit_read(command.page_id, now_us, attempt)
                    )
                elif isinstance(command, GatherCommand):
                    results.append(
                        self.submit_gather(command, now_us, attempt)
                    )
                else:
                    raise DeviceInterfaceError(
                        f"unknown device command {type(command).__name__}"
                    )
            except DeviceFault as fault:
                results.append(fault)
        return results

    def poll(self, now_us: float) -> List[Completion]:
        """Retire completed reads, honouring spiked completion times."""
        done: List[Completion] = []
        for completion in self._inner.poll(now_us):
            adjusted = self._spiked.pop(completion.ticket, None)
            if adjusted is None:
                done.append(completion)
            elif adjusted.completed_at_us <= now_us:
                done.append(adjusted)
            else:
                heapq.heappush(
                    self._held,
                    (adjusted.completed_at_us, adjusted.ticket, adjusted),
                )
        while self._held and self._held[0][0] <= now_us:
            done.append(heapq.heappop(self._held)[2])
        done.sort(key=lambda c: (c.completed_at_us, c.ticket))
        return done

    def drain(self) -> float:
        """Retire everything; return the last (spike-adjusted) completion."""
        last = self._inner.drain()
        for adjusted in self._spiked.values():
            last = max(last, adjusted.completed_at_us)
        self._spiked.clear()
        while self._held:
            last = max(last, heapq.heappop(self._held)[0])
        return last

    def next_completion_time(self) -> Optional[float]:
        """Earliest pending completion (inner heap or held spikes)."""
        times = []
        inner_next = self._inner.next_completion_time()
        if inner_next is not None:
            times.append(inner_next)
        if self._held:
            times.append(self._held[0][0])
        return min(times) if times else None
