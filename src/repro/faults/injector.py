"""Fault injection engine: turns a :class:`FaultPlan` into per-read decisions.

The :class:`FaultInjector` is the stateful side of the fault subsystem:
it owns the monotonically increasing submission sequence number that
decorrelates transient draws across a workload, and the counters the
observability layer reports.  Decisions themselves are pure functions of
the plan (see :mod:`repro.faults.plan`), so two injectors built from the
same plan and fed the same submission stream make identical calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .plan import FaultPlan

OK = "ok"
READ_ERROR = "read_error"
DEAD_PAGE = "dead_page"
BROWNOUT = "brownout"
CORRUPT = "corrupt"
LATENCY_SPIKE = "latency_spike"

#: Fault kinds that abort the submission (no completion is produced).
SUBMIT_FAILURES = frozenset({READ_ERROR, DEAD_PAGE, BROWNOUT})


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of one submission attempt under the active plan.

    Attributes:
        kind: one of ``ok``/``read_error``/``dead_page``/``brownout``/
            ``corrupt``/``latency_spike``.
        extra_latency_us: additional completion latency (spikes only).
        retry_at_us: earliest simulated time a retry can succeed
            (brown-outs only; 0 otherwise).
    """

    kind: str
    extra_latency_us: float = 0.0
    retry_at_us: float = 0.0

    @property
    def fails_submission(self) -> bool:
        """True when the read never produces a completion."""
        return self.kind in SUBMIT_FAILURES


class FaultInjector:
    """Stateful driver of a :class:`FaultPlan`.

    One injector per device: the submission sequence number advances on
    every decision, so repeated reads of the same page draw fresh
    transient faults while dead-page decisions stay fixed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._seq = 0
        self.counters: Dict[str, int] = {
            READ_ERROR: 0,
            DEAD_PAGE: 0,
            BROWNOUT: 0,
            CORRUPT: 0,
            LATENCY_SPIKE: 0,
        }

    @property
    def submissions(self) -> int:
        """Total submission attempts decided so far."""
        return self._seq

    def total_injected(self) -> int:
        """Total faults of any kind injected so far."""
        return sum(self.counters.values())

    def decide(
        self, page_id: int, now_us: float, attempt: int = 0
    ) -> FaultDecision:
        """Decide the fate of one submission attempt.

        Precedence: dead page (persistent) > brown-out (time-driven) >
        transient read error > corrupted payload > latency spike > ok.
        """
        seq = self._seq
        self._seq += 1
        plan = self.plan
        if plan.page_is_dead(page_id):
            self.counters[DEAD_PAGE] += 1
            return FaultDecision(DEAD_PAGE)
        if plan.in_brownout(now_us):
            self.counters[BROWNOUT] += 1
            return FaultDecision(
                BROWNOUT, retry_at_us=plan.brownout_end(now_us)
            )
        if plan.draw_read_error(page_id, attempt, seq):
            self.counters[READ_ERROR] += 1
            return FaultDecision(READ_ERROR)
        if plan.draw_corrupt(page_id, attempt, seq):
            self.counters[CORRUPT] += 1
            return FaultDecision(CORRUPT)
        if plan.draw_spike(page_id, attempt, seq):
            self.counters[LATENCY_SPIKE] += 1
            return FaultDecision(
                LATENCY_SPIKE, extra_latency_us=plan.latency_spike_us
            )
        return FaultDecision(OK)
