"""Tests for the maxembed CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "avazu", "--out", "t.txt"]
        )
        assert args.command == "generate"
        assert args.dataset == "avazu"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "netflix", "--out", "t.txt"]
            )

    def test_experiment_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_generate_build_serve_pipeline(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        assert main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out

        assert main(
            [
                "build",
                "--trace",
                trace_path,
                "--ratio",
                "0.2",
                "--out",
                layout_path,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "built layout" in out

        assert main(
            ["serve", "--trace", trace_path, "--layout", layout_path]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput_qps" in out
        assert "effective_bandwidth" in out

    def test_build_none_strategy(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        assert main(
            [
                "build",
                "--trace",
                trace_path,
                "--strategy",
                "none",
                "--out",
                layout_path,
            ]
        ) == 0
        assert "0 replicas" in capsys.readouterr().out

    def test_sharded_build_serve_pipeline(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        cluster_path = str(tmp_path / "cluster.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        assert main(
            [
                "build",
                "--trace",
                trace_path,
                "--shards",
                "4",
                "--shard-strategy",
                "frequency",
                "--out",
                cluster_path,
            ]
        ) == 0
        assert "4-shard cluster layout" in capsys.readouterr().out

        # Explicit shard count must match the file.
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                cluster_path,
                "--shards",
                "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cluster serving report" in out
        assert "load_imbalance" in out
        assert "shard_3" in out

        # Shard count is inferred from the layout file when omitted.
        assert main(
            ["serve", "--trace", trace_path, "--layout", cluster_path]
        ) == 0
        assert "cluster serving report" in capsys.readouterr().out

    def test_serve_shards_mismatch_errors(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        cluster_path = str(tmp_path / "cluster.json")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            [
                "build",
                "--trace",
                trace_path,
                "--shards",
                "2",
                "--out",
                cluster_path,
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                cluster_path,
                "--shards",
                "4",
            ]
        ) == 1
        assert "holds 2 shards" in capsys.readouterr().err

        # A plain layout cannot be served with --shards > 1.
        main(
            ["build", "--trace", trace_path, "--out", layout_path]
        )
        capsys.readouterr()
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                layout_path,
                "--shards",
                "4",
            ]
        ) == 1
        assert "maxembed build --shards" in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "TCO" in capsys.readouterr().out

    def test_diagnose_command(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "criteo",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            [
                "build",
                "--trace",
                trace_path,
                "--ratio",
                "0.2",
                "--out",
                layout_path,
            ]
        )
        capsys.readouterr()
        assert main(
            ["diagnose", "--layout", layout_path, "--trace", trace_path]
        ) == 0
        out = capsys.readouterr().out
        assert "num_replica_pages" in out
        assert "hot-pair coverage" in out

    def test_serve_with_selector_flags(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            ["build", "--trace", trace_path, "--out", layout_path]
        )
        capsys.readouterr()
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                layout_path,
                "--selector",
                "greedy",
                "--executor",
                "serial",
                "--cache-policy",
                "slru",
            ]
        ) == 0
        assert "throughput_qps" in capsys.readouterr().out

    def test_analyze_command(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        main(
            [
                "generate",
                "--dataset",
                "criteo",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        capsys.readouterr()
        assert main(["analyze", "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "gini" in out
        assert "hot_coappearance_breadth" in out
        assert "replication has headroom" in out
