"""Tests for the maxembed CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "avazu", "--out", "t.txt"]
        )
        assert args.command == "generate"
        assert args.dataset == "avazu"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "netflix", "--out", "t.txt"]
            )

    def test_experiment_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_generate_build_serve_pipeline(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        assert main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out

        assert main(
            [
                "build",
                "--trace",
                trace_path,
                "--ratio",
                "0.2",
                "--out",
                layout_path,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "built layout" in out

        assert main(
            ["serve", "--trace", trace_path, "--layout", layout_path]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput_qps" in out
        assert "effective_bandwidth" in out

    def test_build_none_strategy(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        assert main(
            [
                "build",
                "--trace",
                trace_path,
                "--strategy",
                "none",
                "--out",
                layout_path,
            ]
        ) == 0
        assert "0 replicas" in capsys.readouterr().out

    def test_sharded_build_serve_pipeline(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        cluster_path = str(tmp_path / "cluster.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        assert main(
            [
                "build",
                "--trace",
                trace_path,
                "--shards",
                "4",
                "--shard-strategy",
                "frequency",
                "--out",
                cluster_path,
            ]
        ) == 0
        assert "4-shard cluster layout" in capsys.readouterr().out

        # Explicit shard count must match the file.
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                cluster_path,
                "--shards",
                "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cluster serving report" in out
        assert "load_imbalance" in out
        assert "shard_3" in out

        # Shard count is inferred from the layout file when omitted.
        assert main(
            ["serve", "--trace", trace_path, "--layout", cluster_path]
        ) == 0
        assert "cluster serving report" in capsys.readouterr().out

    def test_serve_shards_mismatch_errors(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        cluster_path = str(tmp_path / "cluster.json")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            [
                "build",
                "--trace",
                trace_path,
                "--shards",
                "2",
                "--out",
                cluster_path,
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                cluster_path,
                "--shards",
                "4",
            ]
        ) == 1
        assert "holds 2 shards" in capsys.readouterr().err

        # A plain layout cannot be served with --shards > 1.
        main(
            ["build", "--trace", trace_path, "--out", layout_path]
        )
        capsys.readouterr()
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                layout_path,
                "--shards",
                "4",
            ]
        ) == 1
        assert "maxembed build --shards" in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "TCO" in capsys.readouterr().out

    def test_diagnose_command(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "criteo",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            [
                "build",
                "--trace",
                trace_path,
                "--ratio",
                "0.2",
                "--out",
                layout_path,
            ]
        )
        capsys.readouterr()
        assert main(
            ["diagnose", "--layout", layout_path, "--trace", trace_path]
        ) == 0
        out = capsys.readouterr().out
        assert "num_replica_pages" in out
        assert "hot-pair coverage" in out

    def test_serve_with_selector_flags(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            ["build", "--trace", trace_path, "--out", layout_path]
        )
        capsys.readouterr()
        assert main(
            [
                "serve",
                "--trace",
                trace_path,
                "--layout",
                layout_path,
                "--selector",
                "greedy",
                "--executor",
                "serial",
                "--cache-policy",
                "slru",
            ]
        ) == 0
        assert "throughput_qps" in capsys.readouterr().out

    def test_analyze_command(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        main(
            [
                "generate",
                "--dataset",
                "criteo",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        capsys.readouterr()
        assert main(["analyze", "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "gini" in out
        assert "hot_coappearance_breadth" in out
        assert "replication has headroom" in out


class TestGatewayCli:
    def test_listen_and_loadgen_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--layout",
                "l.json",
                "--listen",
                "0.0.0.0:9000",
                "--no-coalesce",
                "--tenant",
                "gold:5000:32:1.0",
                "--tenant",
                "bronze",
                "--pace-service",
            ]
        )
        assert args.trace is None
        assert args.listen == "0.0.0.0:9000"
        assert args.no_coalesce is True
        assert args.tenant == ["gold:5000:32:1.0", "bronze"]
        args = build_parser().parse_args(
            [
                "loadgen",
                "--target",
                "127.0.0.1:9000",
                "--trace",
                "t.txt",
                "--concurrency",
                "4",
            ]
        )
        assert args.command == "loadgen"
        assert args.concurrency == 4

    def test_serve_without_trace_or_listen_errors(self, tmp_path, capsys):
        assert main(["serve", "--layout", str(tmp_path / "x.json")]) == 1
        assert "--trace is required" in capsys.readouterr().err

    def test_address_and_tenant_spec_parsing(self):
        from repro.cli import _parse_address, _parse_tenants

        assert _parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert _parse_address(":9000") == ("127.0.0.1", 9000)
        with pytest.raises(SystemExit):
            _parse_address("no-port")
        tenants = _parse_tenants(["gold:5000:32:1.5", "bronze"])
        assert tenants[0].name == "gold"
        assert tenants[0].rate_qps == 5000.0
        assert tenants[0].burst == 32
        assert tenants[0].priority == 1.5
        assert tenants[1].rate_qps is None
        with pytest.raises(SystemExit):
            _parse_tenants([":5"])
        with pytest.raises(SystemExit):
            _parse_tenants(["gold:abc"])

    def test_gateway_serves_until_drained(self, tmp_path):
        """`serve --listen` end-to-end: boot, answer /query, drain via
        POST /drain, exit 0 — the same path the CI smoke job drives."""
        import json as jsonlib
        import re
        import subprocess
        import sys
        import urllib.request

        trace_path = str(tmp_path / "trace.txt")
        layout_path = str(tmp_path / "layout.json")
        main(
            [
                "generate",
                "--dataset",
                "amazon_m2",
                "--scale",
                "small",
                "--out",
                trace_path,
            ]
        )
        main(
            ["build", "--trace", trace_path, "--ratio", "0.1", "--out", layout_path]
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--layout",
                layout_path,
                "--listen",
                "127.0.0.1:0",
                "--admission-capacity",
                "64",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listen banner in {banner!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            request = urllib.request.Request(
                f"{base}/query",
                data=jsonlib.dumps({"keys": [0, 1, 2]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as resp:
                payload = jsonlib.loads(resp.read())
            assert payload["status"] == "ok"
            assert payload["served"] == 3
            with urllib.request.urlopen(
                f"{base}/metrics", timeout=10
            ) as resp:
                metrics = jsonlib.loads(resp.read())
            svc = metrics["service"]
            assert svc["offered"] == svc["accounted"] == 1
            drain = urllib.request.Request(
                f"{base}/drain", data=b"", method="POST"
            )
            with urllib.request.urlopen(drain, timeout=10) as resp:
                assert resp.status == 200
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            assert "gateway drained cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
