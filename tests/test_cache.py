"""Tests for repro.cache: LRU semantics and the embedding-cache facade."""

import pytest

from repro import CacheError, EmbeddingCache, LruCache


class TestLruCache:
    def test_put_get(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = LruCache(2)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_eviction_from_lru_tail(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.stats.evictions == 1

    def test_update_on_read_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now LRU
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_no_update_on_write(self):
        # CacheLib's updateOnWrite=false: overwriting does NOT refresh, so
        # the overwritten key is still evicted first.
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite, recency unchanged
        cache.put("c", 3)  # evicts "a" (still LRU)
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_peek_does_not_touch_recency_or_stats(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        before = cache.stats.lookups
        assert cache.peek("a") == 1
        assert cache.stats.lookups == before
        cache.put("c", 3)  # "a" was NOT refreshed: evicted
        assert cache.peek("a") is None

    def test_hit_rate(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert LruCache(1).stats.hit_rate() == 0.0

    def test_recency_order_exposed(self):
        cache = LruCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, 1)
        cache.get("a")
        assert cache.keys_in_recency_order() == ["b", "c", "a"]

    def test_evict_all(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.evict_all()
        assert len(cache) == 0
        assert cache.stats.inserts == 1  # counters retained

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(CacheError):
            LruCache(0)


class TestEmbeddingCache:
    def test_capacity_from_ratio(self):
        cache = EmbeddingCache(num_keys=100, cache_ratio=0.1)
        assert cache.enabled
        assert cache.capacity == 10

    def test_zero_ratio_disables(self):
        cache = EmbeddingCache(num_keys=100, cache_ratio=0.0)
        assert not cache.enabled
        assert cache.capacity == 0
        hits, misses = cache.filter_hits([1, 2, 3])
        assert hits == []
        assert misses == [1, 2, 3]
        cache.admit([1])  # no-op, must not raise
        assert cache.get_value(1) is None

    def test_filter_hits_after_admission(self):
        cache = EmbeddingCache(num_keys=10, cache_ratio=0.5)
        cache.admit([1, 2])
        hits, misses = cache.filter_hits([1, 2, 3])
        assert hits == [1, 2]
        assert misses == [3]

    def test_lru_pressure_evicts_cold_keys(self):
        cache = EmbeddingCache(num_keys=10, cache_ratio=0.2)  # capacity 2
        cache.admit([1, 2, 3])  # 1 evicted
        hits, misses = cache.filter_hits([1, 2, 3])
        assert 1 in misses
        assert hits == [2, 3]

    def test_value_path(self):
        cache = EmbeddingCache(num_keys=4, cache_ratio=1.0)
        cache.admit_value(2, "vec")
        assert cache.get_value(2) == "vec"

    def test_warm(self):
        cache = EmbeddingCache(num_keys=4, cache_ratio=1.0)
        cache.warm([0, 1])
        hits, _ = cache.filter_hits([0, 1])
        assert hits == [0, 1]

    def test_stats_exposed(self):
        cache = EmbeddingCache(num_keys=4, cache_ratio=0.5)
        cache.filter_hits([0])
        assert cache.stats.misses == 1
        disabled = EmbeddingCache(num_keys=4, cache_ratio=0.0)
        assert disabled.stats.lookups == 0

    def test_rejects_bad_args(self):
        with pytest.raises(CacheError):
            EmbeddingCache(num_keys=0, cache_ratio=0.1)
        with pytest.raises(CacheError):
            EmbeddingCache(num_keys=10, cache_ratio=1.5)
