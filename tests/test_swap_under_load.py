"""Hot swaps under live concurrent traffic: zero dropped, zero mis-served.

The swap contract the refresh daemon leans on: a
:class:`~repro.core.LayoutManager` (or a cluster's per-shard roll) can
replace the serving engine while queries are in flight, and

* no query ever loses a key (``missing_keys == 0`` throughout);
* queries over keys the swap did not move serve **identically** to an
  unswapped engine (bit-parity on the deterministic read-path fields);
* every activation lands in the audit trail.

One engine is not safe for concurrent ``serve_query`` calls against
*itself*, so the threading here mirrors production: a single serving
thread per engine, with the swapper racing it from another thread — the
race under test is serve-vs-swap, not serve-vs-serve.
"""

import threading

import pytest

from repro import (
    EngineConfig,
    MaxEmbedConfig,
    ShpConfig,
    build_offline_layout,
    build_sharded_layout,
)
from repro.cluster import ClusterEngine
from repro.core import LayoutManager


def _build_config(num_shards: int = 1, seed: int = 7) -> MaxEmbedConfig:
    return MaxEmbedConfig(
        strategy="maxembed",
        replication_ratio=0.2,
        shp=ShpConfig(max_iterations=6, seed=7),
        num_shards=num_shards,
        seed=seed,
    )


@pytest.fixture(scope="module")
def layout_variants(criteo_small):
    """Three placements of the same key space (different build seeds)."""
    history, _ = criteo_small
    return [
        build_offline_layout(history, _build_config(seed=seed))
        for seed in (7, 8, 9)
    ]


class TestSingleEngineSwapUnderLoad:
    ROUNDS = 30

    def test_zero_dropped_and_parity_across_swaps(
        self, criteo_small, layout_variants
    ):
        _, live = criteo_small
        queries = list(live)[:120]
        manager = LayoutManager(
            layout_variants[0], EngineConfig(cache_ratio=0.0)
        )
        for layout in layout_variants[1:]:
            manager.register(layout)

        # Expected per-query serving, computed single-threaded on a
        # never-swapped engine per version.  Keys are placement-covered
        # in every variant, so requested/cache/missing are deterministic
        # regardless of which version a racing query lands on.
        reference = {}
        for record in manager.versions():
            solo = LayoutManager(
                record.layout, EngineConfig(cache_ratio=0.0)
            )
            reference[record.version] = [
                (r.requested_keys, r.missing_keys, r.pages_read)
                for r in (solo.serve_query(q) for q in queries)
            ]

        results = []
        errors = []
        stop = threading.Event()

        def serve_loop():
            try:
                while not stop.is_set():
                    for query in queries:
                        results.append(manager.serve_query(query))
            except Exception as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        server = threading.Thread(target=serve_loop)
        server.start()
        versions = [r.version for r in manager.versions()]
        try:
            for round_index in range(self.ROUNDS):
                manager.swap(versions[round_index % len(versions)])
        finally:
            stop.set()
            server.join(timeout=30)
        assert not server.is_alive()
        assert not errors, f"serving thread died: {errors[0]!r}"

        assert len(results) >= len(queries)
        assert len(results) % len(queries) == 0  # only whole sweeps
        assert all(r.missing_keys == 0 for r in results)
        # Every result is bit-identical to *some* version's reference
        # serving of that exact query — never a torn hybrid of layouts.
        for index, result in enumerate(results):
            query_index = index % len(queries)
            legal = {
                rows[query_index] for rows in reference.values()
            }
            row = (
                result.requested_keys,
                result.missing_keys,
                result.pages_read,
            )
            assert row in legal, f"result {index} matches no version: {row}"

        # Audit trail: constructor activation + one event per swap.
        assert len(manager.swap_events) == self.ROUNDS + 1
        assert not manager.engine.closed

    def test_swap_keeps_warm_cache_for_untouched_keys(self, layout_variants):
        manager = LayoutManager(
            layout_variants[0], EngineConfig(cache_ratio=0.05)
        )
        record = manager.register(layout_variants[1])
        queries = [q for q in _warm_queries(layout_variants[0])]
        for query in queries:
            manager.serve_query(query)
        warm_hits = sum(
            manager.serve_query(q).cache_hits for q in queries
        )
        manager.swap(record.version, keep_cache=True)
        kept_hits = sum(
            manager.serve_query(q).cache_hits for q in queries
        )
        # Keys are placement-independent: the warm cache serves exactly
        # as well through the swapped-in engine.
        assert kept_hits == warm_hits


def _warm_queries(layout):
    from repro import Query

    keys = list(range(min(16, layout.num_keys)))
    return [Query(tuple(keys[i : i + 4])) for i in range(0, len(keys), 4)]


class TestClusterSwapUnderLoad:
    def test_swapping_one_shard_leaves_others_bit_identical(
        self, criteo_small
    ):
        history, live = criteo_small
        config = _build_config(num_shards=2)
        sharded = build_sharded_layout(history, config)
        engine = ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))

        # Shard-local traffic for shard 0 (the untouched one), served
        # directly on its engine — engines are single-threaded, so the
        # load thread owns shard 0 while the swapper churns shard 1.
        from repro.cluster import project_trace

        shard0_trace = project_trace(live, engine.plan, 0)
        shard0_queries = list(shard0_trace)[:80]
        baseline = [
            (r.requested_keys, r.missing_keys, r.pages_read)
            for r in (
                engine.engines[0].serve_query(q) for q in shard0_queries
            )
        ]

        shard1_keys = engine.plan.shard_keys(1)
        replacement = build_offline_layout(
            project_trace(live, engine.plan, 1),
            _build_config(seed=11),
        )
        assert replacement.num_keys == len(shard1_keys)

        results = []
        errors = []
        stop = threading.Event()

        def serve_shard0():
            try:
                while not stop.is_set():
                    for query in shard0_queries:
                        results.append(engine.engines[0].serve_query(query))
            except Exception as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        server = threading.Thread(target=serve_shard0)
        server.start()
        try:
            for _ in range(10):
                engine.swap_shard(1, replacement)
        finally:
            stop.set()
            server.join(timeout=30)
        assert not server.is_alive()
        assert not errors, f"shard-0 serving died: {errors[0]!r}"

        # The untouched shard served bit-identically throughout.
        assert len(results) >= len(shard0_queries)
        for index, result in enumerate(results):
            expected = baseline[index % len(shard0_queries)]
            got = (
                result.requested_keys,
                result.missing_keys,
                result.pages_read,
            )
            assert got == expected
        assert engine.swap_counts == [0, 10]
        # Whole-cluster routing is intact after the churn.
        for query in list(live)[:40]:
            assert engine.serve_query(query).missing_keys == 0
