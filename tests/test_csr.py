"""Tests for repro.placement.csr, build_indexes, and index persistence."""

import numpy as np
import pytest

from repro import PageLayout, PlacementError
from repro.placement import (
    CsrArray,
    CsrIndexes,
    ForwardIndex,
    InvertIndex,
    build_indexes,
    load_indexes,
    save_indexes,
    transpose_csr,
)


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (0, 4, 5),
            (1, 6),
        ],
        num_base_pages=2,
    )


class TestCsrArray:
    def test_from_rows_roundtrip(self):
        rows = [(3, 1), (), (2,), (0, 1, 2)]
        csr = CsrArray.from_rows(rows)
        assert csr.num_rows == 4
        assert csr.num_entries == 6
        for r, expected in enumerate(rows):
            assert csr.row(r).tolist() == list(expected)
        assert csr.row_lengths().tolist() == [2, 0, 1, 3]

    def test_row_out_of_range(self):
        csr = CsrArray.from_rows([(0,)])
        with pytest.raises(PlacementError):
            csr.row(1)

    def test_rejects_inconsistent_indptr(self):
        with pytest.raises(PlacementError):
            CsrArray(
                indptr=np.array([0, 3], dtype=np.int64),
                indices=np.array([1], dtype=np.int64),
            )

    def test_transpose(self):
        # rows -> cols: 0 -> {1, 2}, 1 -> {0}, 2 -> {0, 2}
        csr = CsrArray.from_rows([(1, 2), (0,), (0, 2)])
        t = transpose_csr(csr, 3)
        assert t.row(0).tolist() == [1, 2]
        assert t.row(1).tolist() == [0]
        assert t.row(2).tolist() == [0, 2]


class TestCsrIndexes:
    @pytest.mark.parametrize("limit", [None, 1, 2, 5])
    def test_matches_reference_indexes(self, layout, limit):
        csr = CsrIndexes.from_layout(layout, limit=limit)
        forward = ForwardIndex.from_layout(layout, limit=limit)
        invert = InvertIndex.from_layout(layout)
        full = ForwardIndex.from_layout(layout)
        for k in range(layout.num_keys):
            assert tuple(csr.forward.row(k)) == forward.pages_of(k)
            assert tuple(csr.full_forward.row(k)) == full.pages_of(k)
        for p in range(layout.num_pages):
            assert tuple(csr.invert.row(p)) == invert.keys_of(p)

    def test_from_indexes_mirrors_entries(self, layout):
        forward = ForwardIndex.from_layout(layout, limit=1)
        invert = InvertIndex.from_layout(layout)
        csr = CsrIndexes.from_indexes(forward, invert, limit=1)
        for k in range(layout.num_keys):
            assert tuple(csr.forward.row(k)) == forward.pages_of(k)
        assert csr.num_keys == 8
        assert csr.num_pages == 4

    def test_to_indexes_roundtrip(self, layout):
        csr = CsrIndexes.from_layout(layout, limit=2)
        forward, invert = csr.to_indexes()
        ref_forward = ForwardIndex.from_layout(layout, limit=2)
        ref_invert = InvertIndex.from_layout(layout)
        for k in range(layout.num_keys):
            assert forward.pages_of(k) == ref_forward.pages_of(k)
        for p in range(layout.num_pages):
            assert invert.keys_of(p) == ref_invert.keys_of(p)

    def test_rejects_bad_limit(self, layout):
        with pytest.raises(PlacementError):
            CsrIndexes.from_layout(layout, limit=0)

    def test_memory_bytes_positive(self, layout):
        assert CsrIndexes.from_layout(layout).memory_bytes() > 0


class TestPersistence:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_save_load_roundtrip(self, layout, tmp_path, mmap):
        csr = CsrIndexes.from_layout(layout, limit=2)
        save_indexes(csr, tmp_path / "indexes")
        loaded = load_indexes(tmp_path / "indexes", mmap=mmap)
        assert loaded.limit == 2
        for name in ("forward", "invert", "full_forward"):
            got = getattr(loaded, name)
            want = getattr(csr, name)
            assert got.indptr.tolist() == want.indptr.tolist()
            assert got.indices.tolist() == want.indices.tolist()

    def test_mmap_load_is_zero_copy(self, layout, tmp_path):
        save_indexes(CsrIndexes.from_layout(layout), tmp_path / "idx")
        loaded = load_indexes(tmp_path / "idx")
        assert isinstance(loaded.forward.indices, np.memmap)

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(PlacementError):
            load_indexes(tmp_path / "nope")

    def test_load_rejects_foreign_meta(self, tmp_path):
        (tmp_path / "meta.json").write_text("{}")
        with pytest.raises(PlacementError):
            load_indexes(tmp_path)


class TestBuildIndexes:
    @pytest.mark.parametrize("limit", [None, 1, 3])
    def test_single_pass_equals_two_pass(self, layout, limit):
        forward, invert = build_indexes(layout, limit=limit)
        ref_forward = ForwardIndex.from_layout(layout, limit=limit)
        ref_invert = InvertIndex.from_layout(layout)
        assert forward.entries() == ref_forward.entries()
        for p in range(layout.num_pages):
            assert invert.keys_of(p) == ref_invert.keys_of(p)

    def test_rejects_bad_limit(self, layout):
        with pytest.raises(PlacementError):
            build_indexes(layout, limit=0)

    def test_replica_counts_memoized(self, layout):
        forward, _ = build_indexes(layout)
        counts = forward.replica_counts()
        assert counts is forward.replica_counts()  # cached object
        assert counts == [
            forward.replica_count(k) for k in range(layout.num_keys)
        ]
