"""Tests for repro.metrics: placement evaluation, amplification, CDF helpers."""

import pytest

from repro import ConfigError, PageLayout, Query, QueryTrace
from repro.metrics import (
    cdf_points,
    evaluate_placement,
    histogram,
    read_amplification,
)
from repro.metrics.bandwidth import PlacementEvaluation


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4)],
        num_base_pages=2,
    )


@pytest.fixture
def trace():
    return QueryTrace(
        8,
        [
            Query((0, 1, 2, 3)),  # 1 read, 4 valid
            Query((0, 4)),        # 1 read via replica page
            Query((3, 5)),        # 2 reads, 1 valid each
        ],
    )


class TestEvaluatePlacement:
    def test_counts(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        assert ev.num_queries == 3
        assert ev.total_reads == 4
        assert ev.total_valid == 8
        assert ev.total_requested == 8

    def test_histogram(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        assert ev.valid_per_read_hist == {4: 1, 2: 1, 1: 2}

    def test_mean_values(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        assert ev.mean_reads_per_query() == pytest.approx(4 / 3)
        assert ev.mean_valid_per_read() == pytest.approx(2.0)

    def test_effective_fraction(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        assert ev.effective_fraction() == pytest.approx(
            (8 * 256) / (4 * 4096)
        )

    def test_effective_bandwidth_mb_s(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        assert ev.effective_bandwidth_mb_s(1.0) == pytest.approx(
            ev.effective_fraction() * 1000
        )
        with pytest.raises(ConfigError):
            ev.effective_bandwidth_mb_s(0)

    def test_cdf_monotone(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        cdf = ev.cdf()
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_greedy_selector_option(self, layout, trace):
        ev = evaluate_placement(layout, trace, selector="greedy")
        assert ev.total_reads == 4

    def test_index_limit_option(self, layout, trace):
        ev = evaluate_placement(layout, trace, index_limit=1)
        # Key 0 and 4 lose their replica entry, but the replica page is
        # never *chosen* for them; queries still fully covered.
        assert ev.total_valid == 8

    def test_max_queries(self, layout, trace):
        ev = evaluate_placement(layout, trace, max_queries=1)
        assert ev.num_queries == 1

    def test_unknown_selector(self, layout, trace):
        with pytest.raises(ConfigError):
            evaluate_placement(layout, trace, selector="optimal")

    def test_custom_geometry(self, layout, trace):
        ev = evaluate_placement(
            layout, trace, embedding_bytes=512, page_size=2048
        )
        assert ev.effective_fraction() == pytest.approx(
            (8 * 512) / (4 * 2048)
        )


class TestReadAmplification:
    def test_is_reciprocal_of_effective_fraction(self, layout, trace):
        ev = evaluate_placement(layout, trace)
        assert read_amplification(ev) == pytest.approx(
            1.0 / ev.effective_fraction()
        )

    def test_undefined_when_nothing_served(self):
        ev = PlacementEvaluation(
            num_queries=0, total_reads=0, total_valid=0, total_requested=0
        )
        with pytest.raises(ConfigError):
            read_amplification(ev)


class TestCdfHelpers:
    def test_histogram(self):
        assert histogram([1, 1, 2, 3, 3, 3]) == {1: 2, 2: 1, 3: 3}
        assert histogram([]) == {}

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0, 2.0])
        assert points == [(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]

    def test_cdf_points_empty(self):
        assert cdf_points([]) == []

    def test_cdf_points_single(self):
        assert cdf_points([5.0]) == [(5.0, 1.0)]
