"""Tests for repro.serving.selection: greedy and one-pass page selectors."""

import pytest

from repro import (
    GreedySetCoverSelector,
    OnePassSelector,
    PageLayout,
    ServingError,
)
from repro.placement import ForwardIndex, InvertIndex


def make_selectors(layout, limit=None):
    forward = ForwardIndex.from_layout(layout, limit=limit)
    invert = InvertIndex.from_layout(layout)
    return (
        GreedySetCoverSelector(forward, invert),
        OnePassSelector(forward, invert),
    )


@pytest.fixture
def layout():
    """8 keys on 2 base pages plus 2 replica pages mixing them."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[
            (0, 1, 2, 3),  # page 0
            (4, 5, 6, 7),  # page 1
            (0, 4, 5),     # page 2 (replica)
            (1, 6),        # page 3 (replica)
        ],
        num_base_pages=2,
    )


class TestGreedySelector:
    def test_covers_all_keys(self, layout):
        greedy, _ = make_selectors(layout)
        outcome = greedy.select([0, 1, 4, 6])
        assert outcome.covered_keys() == {0, 1, 4, 6}

    def test_picks_largest_cover_first(self, layout):
        greedy, _ = make_selectors(layout)
        outcome = greedy.select([0, 4, 5])
        # Page 2 covers all three in one read.
        assert outcome.pages == [2]

    def test_single_key(self, layout):
        greedy, _ = make_selectors(layout)
        outcome = greedy.select([3])
        assert outcome.pages == [0]

    def test_deduplicates_input(self, layout):
        greedy, _ = make_selectors(layout)
        outcome = greedy.select([3, 3, 3])
        assert outcome.pages == [0]
        assert outcome.steps[0].covered == (3,)

    def test_counts_candidates(self, layout):
        greedy, _ = make_selectors(layout)
        outcome = greedy.select([0, 4])
        # First step examines every page containing 0 or 4: pages 0,1,2.
        assert outcome.steps[0].candidates_examined == 3

    def test_rejects_unknown_key(self, layout):
        greedy, _ = make_selectors(layout)
        with pytest.raises(ServingError):
            greedy.select([99])

    def test_no_sort_charge(self, layout):
        greedy, _ = make_selectors(layout)
        assert greedy.select([0, 1]).sorted_keys == 0


class TestOnePassSelector:
    def test_covers_all_keys(self, layout):
        _, onepass = make_selectors(layout)
        outcome = onepass.select([0, 1, 4, 6])
        assert outcome.covered_keys() == {0, 1, 4, 6}

    def test_replicated_keys_hitchhike(self, layout):
        _, onepass = make_selectors(layout)
        # Key 2 has one copy (page 0), key 0 has two (pages 0, 2).
        # Processing 2 first reads page 0, which also serves 0.
        outcome = onepass.select([0, 2])
        assert outcome.pages == [0]
        assert set(outcome.steps[0].covered) == {0, 2}

    def test_sorted_by_replica_count(self, layout):
        _, onepass = make_selectors(layout)
        outcome = onepass.select([0, 1, 2])
        assert outcome.sorted_keys == 3
        # First chosen page must come from a lowest-replica key (2 or 3).
        assert outcome.pages[0] == 0

    def test_uses_best_replica_page(self, layout):
        _, onepass = make_selectors(layout)
        # Keys {4, 5, 0}: processing 5 (2 copies) should prefer page 2
        # (covers 0, 4, 5) over page 1 (covers 4, 5).
        outcome = onepass.select([4, 5, 0])
        assert 2 in outcome.pages
        assert len(outcome.pages) == 1

    def test_candidates_bounded_by_replica_count(self, layout):
        _, onepass = make_selectors(layout)
        outcome = onepass.select([0])
        assert outcome.steps[0].candidates_examined == 2  # pages 0 and 2

    def test_index_limit_bounds_candidates(self, layout):
        _, onepass = make_selectors(layout, limit=1)
        outcome = onepass.select([0])
        assert outcome.steps[0].candidates_examined == 1
        assert outcome.pages == [0]

    def test_shrunk_index_still_covers_via_invert_index(self, layout):
        # Figure 7 scenario: key 0's forward entry is shrunk to its home
        # page, but a read of page 0 chosen for key 1 still serves key 0.
        _, onepass = make_selectors(layout, limit=1)
        outcome = onepass.select([0, 1, 2, 3])
        assert outcome.covered_keys() == {0, 1, 2, 3}
        assert outcome.pages == [0]

    def test_rejects_unknown_key(self, layout):
        _, onepass = make_selectors(layout)
        with pytest.raises(ServingError):
            onepass.select([-1])

    def test_duplicate_keys_counted_once(self, layout):
        _, onepass = make_selectors(layout)
        outcome = onepass.select([5, 5, 4])
        assert outcome.covered_keys() == {4, 5}


class TestSelectorParity:
    """Greedy and one-pass must agree on correctness, not on exact pages."""

    def test_page_counts_close_on_structured_layout(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        forward = ForwardIndex.from_layout(maxembed_layout_small)
        invert = InvertIndex.from_layout(maxembed_layout_small)
        greedy = GreedySetCoverSelector(forward, invert)
        onepass = OnePassSelector(forward, invert)
        greedy_reads = 0
        onepass_reads = 0
        for query in list(live)[:60]:
            keys = query.unique_keys()
            g = greedy.select(keys)
            o = onepass.select(keys)
            assert g.covered_keys() == set(keys)
            assert o.covered_keys() == set(keys)
            greedy_reads += len(g.steps)
            onepass_reads += len(o.steps)
        # The paper's claim: one-pass is near the greedy page count.
        assert onepass_reads <= greedy_reads * 1.15

    def test_onepass_is_cheaper_in_candidates(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        forward = ForwardIndex.from_layout(maxembed_layout_small)
        invert = InvertIndex.from_layout(maxembed_layout_small)
        greedy = GreedySetCoverSelector(forward, invert)
        onepass = OnePassSelector(forward, invert)
        greedy_cost = 0
        onepass_cost = 0
        for query in list(live)[:40]:
            keys = query.unique_keys()
            greedy_cost += greedy.select(keys).total_candidates
            onepass_cost += onepass.select(keys).total_candidates
        assert onepass_cost < greedy_cost
