"""Tests for repro.partition.multilevel: the KaHyPar-style comparator."""

import pytest

from repro import PartitionError, RandomPartitioner
from repro.hypergraph import Hypergraph
from repro.partition import (
    MultilevelConfig,
    MultilevelPartitioner,
    fanout_objective,
    imbalance,
)
from repro.partition.multilevel import _Level


class TestConfig:
    def test_defaults(self):
        config = MultilevelConfig()
        assert config.coarsen_factor == 4.0
        assert config.max_levels == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coarsen_factor": 0.5},
            {"max_levels": 0},
            {"refine_rounds": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PartitionError):
            MultilevelConfig(**kwargs)


class TestMultilevelPartitioner:
    def test_recovers_planted_communities(self, tiny_graph):
        result = MultilevelPartitioner().partition(tiny_graph, 4)
        assert len({result.assignment[v] for v in (0, 1, 2, 3)}) == 1
        assert len({result.assignment[v] for v in (4, 5, 6, 7)}) == 1

    def test_valid_and_capacity_bounded(self, small_graph):
        result = MultilevelPartitioner().partition(small_graph, 16)
        assert len(result.assignment) == small_graph.num_vertices
        assert max(result.cluster_sizes()) <= 16

    def test_beats_random(self, small_graph):
        random_result = RandomPartitioner(seed=0).partition(small_graph, 16)
        multilevel = MultilevelPartitioner().partition(small_graph, 16)
        assert fanout_objective(
            small_graph, multilevel.assignment
        ) < fanout_objective(small_graph, random_result.assignment)

    def test_deterministic_under_seed(self, tiny_graph):
        a = MultilevelPartitioner(MultilevelConfig(seed=5)).partition(
            tiny_graph, 4
        )
        b = MultilevelPartitioner(MultilevelConfig(seed=5)).partition(
            tiny_graph, 4
        )
        assert a.assignment == b.assignment

    def test_reasonable_balance(self, small_graph):
        result = MultilevelPartitioner().partition(small_graph, 16)
        # Affinity packing tolerates imbalance but capacity bounds it.
        assert imbalance(result.assignment, result.num_clusters) <= 1.0

    def test_singleton_edges_ignored(self):
        g = Hypergraph(8, [(0,), (1,), (2, 3), (4, 5)])
        result = MultilevelPartitioner().partition(g, 4)
        assert result.assignment[2] == result.assignment[3]
        assert result.assignment[4] == result.assignment[5]

    def test_single_cluster(self):
        g = Hypergraph(3, [(0, 1, 2)])
        result = MultilevelPartitioner().partition(g, 4)
        assert result.num_clusters == 1

    def test_zero_refine_rounds_still_valid(self, tiny_graph):
        config = MultilevelConfig(refine_rounds=0)
        result = MultilevelPartitioner(config).partition(tiny_graph, 4)
        assert len(result.assignment) == 12

    def test_finer_cluster_request(self, small_graph):
        finer = small_graph.num_vertices // 16 + 8
        result = MultilevelPartitioner().partition(
            small_graph, 16, num_clusters=finer
        )
        # Fragmentation may open a few overflow clusters beyond the request.
        assert finer <= result.num_clusters <= finer + 8


class TestCoarsening:
    def test_contracts_heavy_pairs(self):
        # Vertices 0 and 1 share a heavy pair-edge: they must merge first.
        import numpy as np

        edges = [([0, 1], 10), ([2, 3], 1), ([0, 2], 1)]
        level = MultilevelPartitioner._coarsen(
            edges, [1, 1, 1, 1], capacity=4, rng=np.random.default_rng(0)
        )
        assert level is not None
        assert level.parent_of[0] == level.parent_of[1]

    def test_respects_capacity(self):
        import numpy as np

        edges = [([0, 1], 5)]
        level = MultilevelPartitioner._coarsen(
            edges, [3, 3], capacity=4, rng=np.random.default_rng(0)
        )
        # Merging would make a weight-6 super-vertex > capacity 4.
        assert level is None or level.parent_of[0] != level.parent_of[1]

    def test_projected_edges_drop_internal(self):
        import numpy as np

        edges = [([0, 1], 1), ([0, 1, 2], 1)]
        level = MultilevelPartitioner._coarsen(
            edges, [1, 1, 1], capacity=4, rng=np.random.default_rng(0)
        )
        if level is not None and level.parent_of[0] == level.parent_of[1]:
            # Edge (0,1) collapsed inside one super-vertex: dropped.
            sizes = [len(v) for v, _ in level.edges]
            assert all(s > 1 for s in sizes)

    def test_level_dataclass(self):
        level = _Level(edges=[([0], 1)], vertex_weight=[2], parent_of=[0])
        assert level.vertex_weight == [2]


class TestEndToEnd:
    def test_offline_build_with_multilevel(self, criteo_small):
        from repro import MaxEmbedConfig
        from repro.core import build_offline_layout

        history, live = criteo_small
        layout = build_offline_layout(
            history,
            MaxEmbedConfig(partitioner="multilevel", replication_ratio=0.2),
        )
        assert layout.num_keys == history.num_keys
        from repro.metrics import evaluate_placement

        evaluation = evaluate_placement(layout, live)
        assert evaluation.effective_fraction() > 0
