"""Tests for repro.core.deploy: versioned layout swaps and staleness probes."""

import pytest

from repro import (
    EngineConfig,
    MaxEmbedConfig,
    PageLayout,
    Query,
    ServingError,
    ShpConfig,
)
from repro.core import LayoutManager, build_offline_layout
from repro.workloads.drift import drifted_trace_for


@pytest.fixture
def tiny_layouts():
    a = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
    b = PageLayout(8, 4, [(0, 4, 1, 5), (2, 6, 3, 7)])
    return a, b


class TestRegistryAndSwap:
    def test_initial_version_active(self, tiny_layouts):
        manager = LayoutManager(tiny_layouts[0])
        assert manager.active_version == 0
        assert manager.versions()[0].label == "initial"
        assert manager.engine.layout is tiny_layouts[0]

    def test_register_and_swap(self, tiny_layouts):
        a, b = tiny_layouts
        manager = LayoutManager(a)
        record = manager.register(b, label="rebuilt")
        assert record.version == 1
        manager.swap(1)
        assert manager.active_version == 1
        assert manager.engine.layout is b

    def test_swap_unknown_version(self, tiny_layouts):
        manager = LayoutManager(tiny_layouts[0])
        with pytest.raises(ServingError):
            manager.swap(5)

    def test_register_rejects_different_key_space(self, tiny_layouts):
        manager = LayoutManager(tiny_layouts[0])
        other = PageLayout(4, 4, [(0, 1, 2, 3)])
        with pytest.raises(ServingError):
            manager.register(other)

    def test_swap_keeps_cache_by_default(self, tiny_layouts):
        a, b = tiny_layouts
        manager = LayoutManager(a, EngineConfig(cache_ratio=1.0))
        manager.engine.serve_query(Query((0, 1)))
        manager.register(b)
        manager.swap(1, keep_cache=True)
        result = manager.engine.serve_query(Query((0, 1)), start_us=100.0)
        assert result.cache_hits == 2  # warm cache survived the swap

    def test_swap_can_drop_cache(self, tiny_layouts):
        a, b = tiny_layouts
        manager = LayoutManager(a, EngineConfig(cache_ratio=1.0))
        manager.engine.serve_query(Query((0, 1)))
        manager.register(b)
        manager.swap(1, keep_cache=False)
        result = manager.engine.serve_query(Query((0, 1)), start_us=100.0)
        assert result.cache_hits == 0  # cold restart

    def test_serving_works_after_swap(self, tiny_layouts):
        a, b = tiny_layouts
        manager = LayoutManager(a, EngineConfig(cache_ratio=0.0))
        manager.register(b)
        manager.swap(1)
        result = manager.engine.serve_query(Query((0, 4)))
        assert result.pages_read == 1  # layout b co-locates 0 and 4


class TestStalenessProbe:
    def test_probe_prefers_matching_layout(self, criteo_small):
        history, live = criteo_small
        config = MaxEmbedConfig(
            replication_ratio=0.2, shp=ShpConfig(max_iterations=4, seed=0)
        )
        fresh = build_offline_layout(history, config)
        drifted = drifted_trace_for("criteo", scale="small", drift_seed=9)
        drifted_history, drifted_live = drifted.split(0.5)
        stale_for_drift = build_offline_layout(drifted_history, config)

        manager = LayoutManager(fresh)
        manager.register(stale_for_drift, label="rebuilt")

        on_fresh = manager.staleness_probe(live, max_queries=200)
        assert on_fresh["initial"] > on_fresh["rebuilt"]
        assert on_fresh["active_share_of_best"] == pytest.approx(1.0)

        on_drifted = manager.staleness_probe(drifted_live, max_queries=200)
        assert on_drifted["rebuilt"] > on_drifted["initial"]
        assert on_drifted["active_share_of_best"] < 1.0

    def test_probe_requires_activation(self, tiny_layouts):
        manager = LayoutManager(tiny_layouts[0])
        # active by construction; direct probe works
        from repro import QueryTrace

        window = QueryTrace(8, [Query((0, 1))])
        scores = manager.staleness_probe(window)
        assert "initial" in scores
