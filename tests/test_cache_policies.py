"""Tests for repro.cache.policies: FIFO, LFU, segmented LRU."""

import pytest

from repro import CacheError, EmbeddingCache
from repro.cache import (
    CACHE_POLICIES,
    FifoCache,
    LfuCache,
    SegmentedLruCache,
    make_cache,
)


class TestFifo:
    def test_eviction_by_insertion_order(self):
        cache = FifoCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a read must NOT save "a"
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_overwrite_keeps_position(self):
        cache = FifoCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts "a" (oldest insertion)
        assert cache.peek("a") is None
        assert cache.peek("b") == 2

    def test_stats(self):
        cache = FifoCache(1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 1
        assert len(cache) == 1
        assert "b" in cache

    def test_evict_all(self):
        cache = FifoCache(2)
        cache.put("a", 1)
        cache.evict_all()
        assert len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(CacheError):
            FifoCache(0)


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(2)
        cache.put("hot", 1)
        cache.put("cold", 2)
        cache.get("hot")
        cache.get("hot")
        cache.put("new", 3)  # evicts "cold" (freq 0 hits)
        assert cache.peek("cold") is None
        assert cache.peek("hot") == 1
        assert cache.peek("new") == 3

    def test_tie_breaks_by_recency(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("b")  # equal freq; "a" is least recent
        cache.put("c", 3)
        assert cache.peek("a") is None
        assert cache.peek("b") == 2

    def test_overwrite_keeps_frequency(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.put("a", 9)
        cache.put("b", 2)
        cache.put("c", 3)  # b has freq 1 (insert), a has 2
        assert cache.peek("a") == 9

    def test_evict_all_clears_frequencies(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.evict_all()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # "a" no longer privileged
        assert len(cache) == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(CacheError):
            LfuCache(-1)


class TestSegmentedLru:
    def test_new_keys_probationary(self):
        cache = SegmentedLruCache(4, protected_fraction=0.5)
        for key in "abcd":
            cache.put(key, key)
        cache.put("e", "e")  # evicts "a" from probation
        assert cache.peek("a") is None
        assert len(cache) == 4

    def test_hit_promotes_and_survives_scan(self):
        cache = SegmentedLruCache(4, protected_fraction=0.5)
        cache.put("hot", 1)
        assert cache.get("hot") == 1  # promoted to protected
        for key in "wxyz":
            cache.put(key, key)  # scan floods probation
        assert cache.peek("hot") == 1  # protected survived the scan

    def test_protected_overflow_demotes(self):
        cache = SegmentedLruCache(4, protected_fraction=0.5)  # protected cap 2
        for key in "abc":
            cache.put(key, key)
            cache.get(key)  # promote each
        # Protected holds 2; "a" was demoted back to probation.
        assert cache.peek("a") == "a"
        assert len(cache) == 3

    def test_capacity_enforced(self):
        cache = SegmentedLruCache(3)
        for key in "abcdef":
            cache.put(key, key)
            cache.get(key)
        assert len(cache) <= 3

    def test_overwrite_in_place(self):
        cache = SegmentedLruCache(3)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.peek("a") == 2
        cache.get("a")
        cache.put("a", 3)  # now protected
        assert cache.peek("a") == 3

    def test_contains_and_stats(self):
        cache = SegmentedLruCache(2)
        cache.put("a", 1)
        assert "a" in cache
        cache.get("a")
        cache.get("zz")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_rejects_bad_args(self):
        with pytest.raises(CacheError):
            SegmentedLruCache(0)
        with pytest.raises(CacheError):
            SegmentedLruCache(4, protected_fraction=1.0)


class TestPolicyRegistry:
    def test_all_policies_constructible(self):
        for name in CACHE_POLICIES:
            cache = make_cache(name, 4)
            cache.put(1, "x")
            assert cache.get(1) == "x"

    def test_unknown_policy(self):
        with pytest.raises(CacheError):
            make_cache("belady", 4)

    def test_embedding_cache_accepts_policy(self):
        cache = EmbeddingCache(num_keys=10, cache_ratio=0.5, policy="lfu")
        cache.admit([1, 2])
        hits, misses = cache.filter_hits([1, 3])
        assert hits == [1]
        assert misses == [3]

    def test_engine_accepts_policy(self, shp_layout_small, criteo_small):
        from repro import EngineConfig, ServingEngine

        _, live = criteo_small
        engine = ServingEngine(
            shp_layout_small,
            EngineConfig(cache_ratio=0.1, cache_policy="slru"),
        )
        report = engine.serve_trace(list(live)[:50])
        assert report.num_queries == 50
