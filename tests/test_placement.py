"""Tests for repro.placement: layout, indexes, shrinking, serialization."""

import pytest

from repro import PageLayout, PlacementError
from repro.placement import (
    ForwardIndex,
    InvertIndex,
    layout_from_partition,
    load_layout,
    save_layout,
)
from repro.partition import PartitionResult


@pytest.fixture
def replicated_layout() -> PageLayout:
    """8 keys, capacity 4: two base pages + one replica page (1, 4, 6)."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (1, 4, 6)],
        num_base_pages=2,
    )


class TestPageLayout:
    def test_geometry(self, replicated_layout):
        layout = replicated_layout
        assert layout.num_keys == 8
        assert layout.capacity == 4
        assert layout.num_pages == 3
        assert layout.num_base_pages == 2
        assert layout.num_replica_pages == 1

    def test_page_access(self, replicated_layout):
        assert replicated_layout.page(2) == (1, 4, 6)
        with pytest.raises(PlacementError):
            replicated_layout.page(3)

    def test_is_replica_page(self, replicated_layout):
        assert not replicated_layout.is_replica_page(0)
        assert replicated_layout.is_replica_page(2)

    def test_replica_counts(self, replicated_layout):
        counts = replicated_layout.replica_counts()
        assert counts[1] == 2
        assert counts[0] == 1
        assert sum(counts) == replicated_layout.total_slots_used()

    def test_extra_page_ratio(self, replicated_layout):
        assert replicated_layout.extra_page_ratio() == pytest.approx(0.5)

    def test_space_overhead(self, replicated_layout):
        assert replicated_layout.space_overhead() == pytest.approx(0.5)

    def test_storage_bytes(self, replicated_layout):
        assert replicated_layout.storage_bytes(4096) == 3 * 4096
        with pytest.raises(PlacementError):
            replicated_layout.storage_bytes(0)

    def test_rejects_missing_key(self):
        with pytest.raises(PlacementError, match="on no page"):
            PageLayout(4, 4, [(0, 1, 2)])

    def test_rejects_oversized_page(self):
        with pytest.raises(PlacementError):
            PageLayout(4, 2, [(0, 1, 2), (3,)])

    def test_rejects_duplicate_key_on_page(self):
        with pytest.raises(PlacementError):
            PageLayout(2, 4, [(0, 0, 1)])

    def test_rejects_empty_page(self):
        with pytest.raises(PlacementError):
            PageLayout(2, 4, [(0, 1), ()])

    def test_rejects_out_of_range_key(self):
        with pytest.raises(PlacementError):
            PageLayout(2, 4, [(0, 1, 5)])

    def test_rejects_bad_base_page_count(self):
        with pytest.raises(PlacementError):
            PageLayout(2, 4, [(0, 1)], num_base_pages=2)


class TestLayoutFromPartition:
    def test_base_pages_from_clusters(self):
        result = PartitionResult([0, 0, 1, 1], 2, 2)
        layout = layout_from_partition(result)
        assert layout.pages() == [(0, 1), (2, 3)]
        assert layout.num_base_pages == 2

    def test_extra_pages_appended(self):
        result = PartitionResult([0, 0, 1, 1], 2, 2)
        layout = layout_from_partition(result, [(0, 2)])
        assert layout.num_pages == 3
        assert layout.is_replica_page(2)

    def test_empty_clusters_skipped(self):
        result = PartitionResult([0, 0], 3, 2)
        layout = layout_from_partition(result)
        assert layout.num_pages == 1


class TestForwardIndex:
    def test_home_page_first(self, replicated_layout):
        index = ForwardIndex.from_layout(replicated_layout)
        assert index.pages_of(1) == (0, 2)
        assert index.home_page(1) == 0
        assert index.replica_count(1) == 2
        assert index.replica_count(0) == 1

    def test_limit_keeps_home_page(self, replicated_layout):
        index = ForwardIndex.from_layout(replicated_layout, limit=1)
        assert index.pages_of(1) == (0,)
        assert index.pages_of(4) == (1,)

    def test_shrink_copy(self, replicated_layout):
        full = ForwardIndex.from_layout(replicated_layout)
        shrunk = full.shrink(1)
        assert shrunk.replica_count(1) == 1
        assert full.replica_count(1) == 2  # original untouched

    def test_total_entries(self, replicated_layout):
        index = ForwardIndex.from_layout(replicated_layout)
        assert index.total_entries() == replicated_layout.total_slots_used()

    def test_rejects_bad_limit(self, replicated_layout):
        with pytest.raises(PlacementError):
            ForwardIndex.from_layout(replicated_layout, limit=0)
        with pytest.raises(PlacementError):
            ForwardIndex.from_layout(replicated_layout).shrink(0)

    def test_rejects_unknown_key(self, replicated_layout):
        index = ForwardIndex.from_layout(replicated_layout)
        with pytest.raises(PlacementError):
            index.pages_of(8)

    def test_num_keys(self, replicated_layout):
        assert ForwardIndex.from_layout(replicated_layout).num_keys == 8


class TestInvertIndex:
    def test_mirrors_layout(self, replicated_layout):
        index = InvertIndex.from_layout(replicated_layout)
        assert index.num_pages == 3
        assert index.keys_of(2) == (1, 4, 6)
        assert index.key_set(2) == frozenset({1, 4, 6})

    def test_covered_counts_intersection(self, replicated_layout):
        index = InvertIndex.from_layout(replicated_layout)
        assert index.covered(2, {1, 4, 9}) == 2
        assert index.covered(0, {7}) == 0

    def test_rejects_bad_page(self, replicated_layout):
        index = InvertIndex.from_layout(replicated_layout)
        with pytest.raises(PlacementError):
            index.keys_of(3)
        with pytest.raises(PlacementError):
            index.key_set(-1)

    def test_invert_index_never_shrinks(self, replicated_layout):
        # Figure 7's guarantee: even when the forward index omits a page,
        # the invert index still knows the page's full contents.
        forward = ForwardIndex.from_layout(replicated_layout, limit=1)
        invert = InvertIndex.from_layout(replicated_layout)
        assert 2 not in forward.pages_of(1)
        assert 1 in invert.key_set(2)


class TestSerialize:
    def test_round_trip(self, replicated_layout, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(replicated_layout, path)
        loaded = load_layout(path)
        assert loaded.pages() == replicated_layout.pages()
        assert loaded.num_base_pages == replicated_layout.num_base_pages
        assert loaded.capacity == replicated_layout.capacity

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(PlacementError):
            load_layout(tmp_path / "absent.json")

    def test_load_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2")
        with pytest.raises(PlacementError):
            load_layout(path)

    def test_load_missing_field_raises(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"num_keys": 2, "capacity": 4, "pages": [[0, 1]]}')
        with pytest.raises(PlacementError, match="num_base_pages"):
            load_layout(path)
