"""Tests for repro.serving: cost model, executors, engine, reports."""

import pytest

from repro import (
    ConfigError,
    EmbeddingSpec,
    EngineConfig,
    P5800X,
    PageLayout,
    PipelinedExecutor,
    Query,
    QueryTrace,
    SerialExecutor,
    ServingEngine,
    ServingError,
    SimulatedSsd,
)
from repro.serving import CpuCostModel, aggregate_results
from repro.serving.selection import SelectionOutcome, SelectionStep
from repro.serving.stats import QueryResult
from repro.ssd import SsdProfile


def outcome_with(steps, sorted_keys=0):
    return SelectionOutcome(
        tuple(
            SelectionStep(page_id=p, covered=c, candidates_examined=n)
            for p, c, n in steps
        ),
        sorted_keys=sorted_keys,
    )


class TestCpuCostModel:
    def test_sort_time_zero_for_single_key(self):
        model = CpuCostModel()
        assert model.sort_time_us(0) == 0.0
        assert model.sort_time_us(1) == 0.0
        assert model.sort_time_us(8) > 0.0

    def test_sort_time_superlinear(self):
        model = CpuCostModel(sort_per_key_us=1.0)
        assert model.sort_time_us(16) > 2 * model.sort_time_us(8)

    def test_step_time_linear_in_candidates(self):
        model = CpuCostModel(candidate_examine_us=2.0, step_base_us=1.0)
        assert model.step_time_us(0) == 1.0
        assert model.step_time_us(3) == 7.0

    def test_selection_time_sums_steps(self):
        model = CpuCostModel(candidate_examine_us=1.0, step_base_us=0.0)
        outcome = outcome_with([(0, (1,), 2), (1, (2,), 3)])
        assert model.selection_time_us(outcome) == 5.0

    def test_total_includes_base_and_sort(self):
        model = CpuCostModel(
            sort_per_key_us=0.0,
            candidate_examine_us=0.0,
            step_base_us=0.0,
            query_base_us=3.0,
        )
        outcome = outcome_with([(0, (1,), 1)], sorted_keys=4)
        assert model.total_cpu_us(outcome) == 3.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            CpuCostModel(sort_per_key_us=-1.0)


def fast_device(latency=10.0):
    profile = SsdProfile(
        "test", read_latency_us=latency, bandwidth_gb_s=0.004096,
        queue_depth=64,
    )
    return SimulatedSsd(profile, page_size=4096)


class TestExecutors:
    def test_serial_runs_selection_before_any_read(self):
        model = CpuCostModel(
            sort_per_key_us=0.0, candidate_examine_us=0.0,
            step_base_us=1.0, query_base_us=0.0,
        )
        device = fast_device(latency=10.0)
        outcome = outcome_with([(0, (1,), 1), (1, (2,), 1)])
        result = SerialExecutor(model).execute(outcome, device, 0.0)
        # Both selection steps (2 us) run first; reads submitted at t=2:
        # the first completes at 12, the second waits for the bandwidth
        # slot freed at t=1002 and completes at 1012.
        assert result.pages_read == 2
        assert result.selection_us == pytest.approx(2.0)
        assert result.latency_us == pytest.approx(1012.0)
        assert result.io_wait_us == pytest.approx(1010.0)
        assert result.io_wait_us > 0

    def test_pipelined_overlaps_selection_with_reads(self):
        model = CpuCostModel(
            sort_per_key_us=0.0, candidate_examine_us=0.0,
            step_base_us=4.0, query_base_us=0.0,
        )
        outcome = outcome_with([(0, (1,), 1), (1, (2,), 1), (2, (3,), 1)])
        fast = SimulatedSsd(
            SsdProfile("fat", read_latency_us=10.0, bandwidth_gb_s=100.0),
            page_size=4096,
        )
        result = PipelinedExecutor(model).execute(outcome, fast, 0.0)
        # CPU: 12us of selection; last read issued at 12, completes at 22.
        assert result.latency_us == pytest.approx(22.0)
        assert result.selection_us == pytest.approx(12.0)

    def test_pipelined_never_slower_than_serial(self, criteo_small):
        model = CpuCostModel()
        outcome = outcome_with(
            [(p, (p,), 3) for p in range(6)], sorted_keys=6
        )
        serial = SerialExecutor(model).execute(outcome, fast_device(), 0.0)
        pipelined = PipelinedExecutor(model).execute(
            outcome, fast_device(), 0.0
        )
        assert pipelined.latency_us <= serial.latency_us

    def test_zero_steps_costs_only_front(self):
        model = CpuCostModel(query_base_us=2.0, sort_per_key_us=0.0)
        outcome = outcome_with([])
        result = PipelinedExecutor(model).execute(outcome, fast_device(), 5.0)
        assert result.latency_us == pytest.approx(2.0)
        assert result.pages_read == 0

    def test_execution_result_properties(self):
        model = CpuCostModel()
        outcome = outcome_with([(0, (1,), 1)])
        result = SerialExecutor(model).execute(outcome, fast_device(), 3.0)
        assert result.start_us == 3.0
        assert result.cpu_us == result.sort_us + result.selection_us
        assert result.finish_us > result.start_us


@pytest.fixture
def simple_layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4)],
        num_base_pages=2,
    )


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.selector == "onepass"
        assert config.executor == "pipelined"
        assert config.threads == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"selector": "magic"},
            {"executor": "warp"},
            {"threads": 0},
            {"raid_members": 0},
            {"cache_ratio": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServingError):
            EngineConfig(**kwargs)


class TestServingEngine:
    def test_serve_query_covers_misses(self, simple_layout):
        engine = ServingEngine(
            simple_layout, EngineConfig(cache_ratio=0.0)
        )
        result = engine.serve_query(Query((0, 4)))
        assert result.ssd_keys == 2
        assert result.pages_read == 1  # replica page (0, 4)
        assert result.cache_hits == 0
        assert sum(result.valid_per_read) == 2

    def test_cache_absorbs_repeats(self, simple_layout):
        engine = ServingEngine(
            simple_layout, EngineConfig(cache_ratio=1.0)
        )
        first = engine.serve_query(Query((0, 1)))
        second = engine.serve_query(Query((0, 1)), start_us=1000.0)
        assert first.pages_read == 1
        assert second.pages_read == 0
        assert second.cache_hits == 2
        assert second.latency_us < first.latency_us

    def test_fully_cached_query_has_no_execution(self, simple_layout):
        engine = ServingEngine(simple_layout, EngineConfig(cache_ratio=1.0))
        engine.serve_query(Query((5,)))
        result = engine.serve_query(Query((5,)), start_us=10.0)
        assert result.execution is None
        assert result.pages_read == 0

    def test_serve_trace_report(self, simple_layout):
        engine = ServingEngine(simple_layout, EngineConfig(cache_ratio=0.0))
        trace = QueryTrace(
            8, [Query((0, 1)), Query((4, 5)), Query((0, 4))]
        )
        report = engine.serve_trace(trace)
        assert report.num_queries == 3
        assert report.total_pages_read >= 3
        assert report.throughput_qps() > 0
        assert report.mean_latency_us() > 0

    def test_serve_trace_warmup_excluded(self, simple_layout):
        engine = ServingEngine(simple_layout, EngineConfig(cache_ratio=0.5))
        trace = QueryTrace(8, [Query((0,))] * 5)
        report = engine.serve_trace(trace, warmup_queries=2)
        assert report.num_queries == 3

    def test_serve_trace_rejects_empty(self, simple_layout):
        engine = ServingEngine(simple_layout)
        with pytest.raises(ServingError):
            engine.serve_trace(QueryTrace(8))

    def test_serve_trace_rejects_all_warmup(self, simple_layout):
        engine = ServingEngine(simple_layout)
        trace = QueryTrace(8, [Query((0,))])
        with pytest.raises(ServingError):
            engine.serve_trace(trace, warmup_queries=1)

    def test_rejects_undersized_spec(self, simple_layout):
        with pytest.raises(ServingError):
            ServingEngine(
                simple_layout,
                EngineConfig(spec=EmbeddingSpec(dim=1024, page_size=4096)),
            )

    def test_raid_engine(self, simple_layout):
        engine = ServingEngine(
            simple_layout,
            EngineConfig(cache_ratio=0.0, raid_members=2),
        )
        result = engine.serve_query(Query((0, 5)))
        assert result.pages_read >= 1

    def test_memory_overhead_counts_both_indexes(self, simple_layout):
        engine = ServingEngine(simple_layout)
        slots = simple_layout.total_slots_used()
        assert engine.memory_overhead_entries() == 2 * slots

    def test_index_limit_reduces_memory(self, simple_layout):
        full = ServingEngine(simple_layout)
        shrunk = ServingEngine(
            simple_layout, EngineConfig(index_limit=1)
        )
        assert (
            shrunk.memory_overhead_entries() < full.memory_overhead_entries()
        )

    def test_more_threads_increase_throughput_when_io_bound(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:100]
        reports = {}
        for threads in (1, 8):
            engine = ServingEngine(
                maxembed_layout_small,
                EngineConfig(cache_ratio=0.0, threads=threads),
            )
            reports[threads] = engine.serve_trace(queries)
        assert (
            reports[8].throughput_qps() > reports[1].throughput_qps()
        )


class TestReports:
    def make_results(self):
        return [
            QueryResult(
                requested_keys=4,
                cache_hits=1,
                ssd_keys=3,
                pages_read=2,
                valid_per_read=(2, 1),
                start_us=0.0,
                finish_us=50.0,
            ),
            QueryResult(
                requested_keys=2,
                cache_hits=2,
                ssd_keys=0,
                pages_read=0,
                valid_per_read=(),
                start_us=10.0,
                finish_us=20.0,
            ),
        ]

    def test_aggregate(self):
        report = aggregate_results(
            self.make_results(), page_size=4096, embedding_bytes=256
        )
        assert report.num_queries == 2
        assert report.makespan_us == 50.0
        assert report.total_pages_read == 2
        assert report.total_valid_embeddings == 3
        assert report.total_cache_hits == 3
        assert report.valid_per_read_hist == {2: 1, 1: 1}

    def test_bandwidth_math(self):
        report = aggregate_results(
            self.make_results(), page_size=4096, embedding_bytes=256
        )
        assert report.useful_bytes() == 3 * 256
        assert report.total_bytes_read() == 2 * 4096
        assert report.effective_bandwidth_fraction() == pytest.approx(
            768 / 8192
        )
        assert report.effective_bandwidth_mb_s(1.0) == pytest.approx(
            768 / 8192 * 1000
        )

    def test_latency_percentiles(self):
        report = aggregate_results(
            self.make_results(), page_size=4096, embedding_bytes=256
        )
        assert report.mean_latency_us() == pytest.approx(30.0)
        assert report.percentile_latency_us(100) == pytest.approx(50.0)
        with pytest.raises(ServingError):
            report.percentile_latency_us(101)

    def test_cache_hit_rate(self):
        report = aggregate_results(
            self.make_results(), page_size=4096, embedding_bytes=256
        )
        assert report.cache_hit_rate() == pytest.approx(3 / 6)

    def test_valid_per_read_cdf(self):
        report = aggregate_results(
            self.make_results(), page_size=4096, embedding_bytes=256
        )
        assert report.valid_per_read_cdf() == [(1, 0.5), (2, 1.0)]

    def test_mean_valid_per_read(self):
        report = aggregate_results(
            self.make_results(), page_size=4096, embedding_bytes=256
        )
        assert report.mean_valid_per_read() == pytest.approx(1.5)

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ServingError):
            aggregate_results([], page_size=4096, embedding_bytes=256)
