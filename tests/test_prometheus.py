"""Prometheus exposition of the gateway metrics tree.

Unit level: the generic flattener (paths, labels, bools, skipped
strings, diff-stable ordering).  Transport level: a live gateway
answering ``GET /metrics?format=prometheus`` with the text exposition
content type — including the tier counters when a pinned DRAM tier is
configured — and rejecting unknown formats with a 400.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import EngineConfig, PageLayout, ServingEngine
from repro.service import (
    GatewayCore,
    HttpGateway,
    ServiceConfig,
    render_prometheus,
)
from repro.service.prometheus import content_type


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4, 1, 5)],
    )


class TestRenderer:
    def test_paths_join_with_underscores(self):
        text = render_prometheus({"serving": {"queries": 3}})
        assert "# TYPE maxembed_serving_queries gauge" in text
        assert "maxembed_serving_queries 3" in text

    def test_bools_are_01_and_strings_skipped(self):
        text = render_prometheus(
            {"draining": True, "stopped": False, "mode": "pinned"}
        )
        assert "maxembed_draining 1" in text
        assert "maxembed_stopped 0" in text
        assert "mode" not in text

    def test_lists_get_index_labels(self):
        text = render_prometheus({"tier": {"shard_hits": [4, 0, 9]}})
        assert 'maxembed_tier_shard_hits{index="0"} 4' in text
        assert 'maxembed_tier_shard_hits{index="2"} 9' in text

    def test_replica_state_histogram_gets_key_labels(self):
        text = render_prometheus(
            {"replicas": {"states": {"healthy": 3, "dead": 1}}}
        )
        assert 'maxembed_replicas_states{key="healthy"} 3' in text
        assert 'maxembed_replicas_states{key="dead"} 1' in text

    def test_freeform_maps_get_key_labels(self):
        text = render_prometheus(
            {"service": {"shed": {"queue full": 2, "deadline": 1}}}
        )
        assert 'maxembed_service_shed{key="queue_full"} 2' in text
        assert 'maxembed_service_shed{key="deadline"} 1' in text

    def test_floats_and_name_sanitization(self):
        text = render_prometheus({"p99-latency.us": 12.5})
        assert "maxembed_p99_latency_us 12.5" in text

    def test_output_is_sorted_and_deterministic(self):
        metrics = {"b": 1, "a": {"z": 2, "y": 3}}
        first = render_prometheus(metrics)
        second = render_prometheus(dict(reversed(list(metrics.items()))))
        assert first == second
        names = [
            line.split("{")[0].split(" ")[0]
            for line in first.splitlines()
            if not line.startswith("#")
        ]
        assert names == sorted(names)

    def test_type_line_emitted_once_per_name(self):
        text = render_prometheus({"tier": {"shard_hits": [1, 2, 3]}})
        assert text.count("# TYPE maxembed_tier_shard_hits gauge") == 1

    def test_content_type_is_exposition_004(self):
        assert content_type().startswith("text/plain; version=0.0.4")


async def raw_get(reader, writer, path):
    """One GET on a kept-alive connection -> (status, content-type, body)."""
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n"
        .encode()
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split(b" ")[1])
    length, ctype = 0, ""
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
        elif name.strip().lower() == "content-type":
            ctype = value.strip()
    body = await reader.readexactly(length) if length else b""
    return status, ctype, body.decode()


def scrape(layout, path, tier=False):
    async def runner():
        options = (
            dict(tier_mode="pinned", tier_ratio=0.25) if tier else {}
        )
        engine = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0, threads=2, **options)
        )
        core = GatewayCore(engine, ServiceConfig())
        server = HttpGateway(core, port=0)
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.bound_port
        )
        try:
            return await raw_get(reader, writer, path)
        finally:
            writer.close()
            await server.stop()

    return asyncio.run(runner())


class TestEndpoint:
    def test_prometheus_format_and_content_type(self, layout):
        status, ctype, body = scrape(layout, "/metrics?format=prometheus")
        assert status == 200
        assert ctype == content_type()
        assert "# TYPE maxembed_service_offered gauge" in body
        assert "maxembed_service_offered 0" in body
        assert "maxembed_open_loop_completed 0" in body

    def test_tier_counters_exposed(self, layout):
        status, _, body = scrape(
            layout, "/metrics?format=prometheus", tier=True
        )
        assert status == 200
        assert "maxembed_tier_pinned_keys 2" in body
        assert "maxembed_tier_tier_ratio 0.25" in body

    def test_json_format_unchanged(self, layout):
        status, ctype, body = scrape(layout, "/metrics?format=json")
        assert status == 200
        assert ctype.startswith("application/json")
        assert json.loads(body)["service"]["offered"] == 0

    def test_unknown_format_is_400(self, layout):
        status, _, body = scrape(layout, "/metrics?format=bogus")
        assert status == 400
        assert "unknown metrics format" in body
