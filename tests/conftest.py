"""Shared fixtures: tiny handcrafted structures and small generated traces."""

from __future__ import annotations

import pytest

from repro import (
    EmbeddingSpec,
    MaxEmbedConfig,
    Query,
    QueryTrace,
    ShpConfig,
    build_weighted_hypergraph,
    make_trace,
)
from repro.core import build_offline_layout
from repro.hypergraph import Hypergraph
from repro.placement import PageLayout


@pytest.fixture
def tiny_graph() -> Hypergraph:
    """12 vertices, 4 hand-made hyperedges with two obvious communities."""
    return Hypergraph(
        12,
        [
            (0, 1, 2, 3),
            (0, 1, 2),
            (4, 5, 6, 7),
            (4, 5, 6),
            (8, 9),
            (10, 11),
            (3, 7),
        ],
    )


@pytest.fixture
def tiny_trace() -> QueryTrace:
    """A fixed 8-query trace over 16 keys (no randomness)."""
    queries = [
        Query((0, 1, 2, 3)),
        Query((0, 1, 2)),
        Query((4, 5, 6, 7)),
        Query((4, 5)),
        Query((8, 9, 10)),
        Query((11, 12)),
        Query((13, 14, 15)),
        Query((0, 4, 8, 12)),
    ]
    return QueryTrace(16, queries)


@pytest.fixture(scope="session")
def criteo_small():
    """(history, live) halves of the small Criteo preset (session cached)."""
    trace, _ = make_trace("criteo", scale="small", seed=7)
    return trace.split(0.5)


@pytest.fixture(scope="session")
def shp_layout_small(criteo_small) -> PageLayout:
    """Plain SHP layout (no replication) on the small Criteo history."""
    history, _ = criteo_small
    config = MaxEmbedConfig(
        strategy="none", shp=ShpConfig(max_iterations=8, seed=7), seed=7
    )
    return build_offline_layout(history, config)


@pytest.fixture(scope="session")
def maxembed_layout_small(criteo_small) -> PageLayout:
    """MaxEmbed layout at r=20 % on the small Criteo history."""
    history, _ = criteo_small
    config = MaxEmbedConfig(
        strategy="maxembed",
        replication_ratio=0.2,
        shp=ShpConfig(max_iterations=8, seed=7),
        seed=7,
    )
    return build_offline_layout(history, config)


@pytest.fixture(scope="session")
def small_graph(criteo_small) -> Hypergraph:
    """Weighted hypergraph of the small Criteo history."""
    history, _ = criteo_small
    return build_weighted_hypergraph(history)


@pytest.fixture
def spec64() -> EmbeddingSpec:
    """The paper's default geometry: 64-dim (256 B) on 4 KiB pages, d=16."""
    return EmbeddingSpec(dim=64, page_size=4096)
