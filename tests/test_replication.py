"""Tests for repro.replication: scoring and the three strategies."""

import pytest

from repro import (
    ConfigError,
    ConnectivityPriorityStrategy,
    FprStrategy,
    RppStrategy,
    ShpConfig,
    ShpPartitioner,
    VanillaPlacement,
)
from repro.hypergraph import Hypergraph, build_weighted_hypergraph
from repro.metrics import evaluate_placement
from repro.replication import build_layout, connectivity_scores, hotness_scores
from repro.replication.base import ReplicationStrategy
from repro.replication.scoring import top_scored_vertices


@pytest.fixture
def partitioned_graph():
    """Graph + a fixed partition where edge (3, 7) straddles clusters."""
    graph = Hypergraph(
        12,
        [
            (0, 1, 2, 3),
            (0, 1, 2),
            (4, 5, 6, 7),
            (4, 5, 6),
            (8, 9),
            (10, 11),
            (3, 7),
        ],
    )
    assignment = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
    return graph, assignment


class TestScoring:
    def test_connectivity_scores_reward_straddling_vertices(
        self, partitioned_graph
    ):
        graph, assignment = partitioned_graph
        scores = connectivity_scores(graph, assignment)
        # Only edge (3, 7) has lambda > 1, contributing 1 to each endpoint.
        assert scores[3] == 1
        assert scores[7] == 1
        assert scores[0] == 0
        assert scores[8] == 0

    def test_connectivity_scores_are_weighted(self):
        graph = Hypergraph(4, [(0, 1), (2, 3)], weights=[5, 1])
        assignment = [0, 1, 0, 0]  # cuts the weight-5 edge
        scores = connectivity_scores(graph, assignment)
        assert scores[0] == 5
        assert scores[1] == 5
        assert scores[2] == 0

    def test_hotness_scores_are_degrees(self, partitioned_graph):
        graph, _ = partitioned_graph
        assert hotness_scores(graph) == graph.degrees()

    def test_top_scored_excludes_zero_scores(self):
        assert top_scored_vertices([3, 0, 5, 0], 4) == [2, 0]

    def test_top_scored_tie_breaks_by_id(self):
        assert top_scored_vertices([2, 2, 2], 2) == [0, 1]

    def test_top_scored_zero_count(self):
        assert top_scored_vertices([1, 2], 0) == []


class TestConnectivityPriority:
    def test_base_pages_are_untouched(self, partitioned_graph):
        graph, _ = partitioned_graph
        partitioner = ShpPartitioner(ShpConfig(seed=0))
        plain = partitioner.partition(graph, 4)
        strategy = ConnectivityPriorityStrategy(
            ShpPartitioner(ShpConfig(seed=0))
        )
        layout = strategy.build_layout(graph, 4, ratio=0.5)
        base_pages = [tuple(c) for c in plain.clusters() if c]
        assert layout.pages()[: len(base_pages)] == base_pages

    def test_replica_budget_respected(self, small_graph):
        strategy = ConnectivityPriorityStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0))
        )
        for ratio in (0.1, 0.4, 0.8):
            layout = strategy.build_layout(small_graph, 16, ratio)
            budget = ReplicationStrategy.replica_page_budget(
                small_graph.num_vertices, 16, ratio
            )
            assert layout.num_replica_pages <= budget

    def test_zero_ratio_means_no_replicas(self, small_graph):
        strategy = ConnectivityPriorityStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0))
        )
        layout = strategy.build_layout(small_graph, 16, 0.0)
        assert layout.num_replica_pages == 0

    def test_replica_pages_start_with_base_vertex(self, small_graph):
        strategy = ConnectivityPriorityStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0))
        )
        layout = strategy.build_layout(small_graph, 16, 0.2)
        for page_id in range(layout.num_base_pages, layout.num_pages):
            page = layout.page(page_id)
            assert len(page) >= 2  # base + at least one companion

    def test_no_duplicate_replica_pages(self, small_graph):
        strategy = ConnectivityPriorityStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0))
        )
        layout = strategy.build_layout(small_graph, 16, 0.4)
        replica_sets = [
            frozenset(layout.page(p))
            for p in range(layout.num_base_pages, layout.num_pages)
        ]
        assert len(replica_sets) == len(set(replica_sets))

    def test_improves_effective_bandwidth(self, criteo_small):
        history, live = criteo_small
        graph = build_weighted_hypergraph(history)
        partitioner = ShpPartitioner(ShpConfig(max_iterations=8, seed=0))
        strategy = ConnectivityPriorityStrategy(partitioner)
        base = strategy.build_layout(graph, 16, 0.0)
        replicated = strategy.build_layout(graph, 16, 0.4)
        assert (
            evaluate_placement(replicated, live).effective_fraction()
            > evaluate_placement(base, live).effective_fraction()
        )

    def test_rejects_negative_ratio(self, small_graph):
        with pytest.raises(ConfigError):
            ConnectivityPriorityStrategy().build_layout(small_graph, 16, -0.1)

    def test_exclude_home_cluster_ablation(self, small_graph):
        # Disabling home-cluster exclusion may duplicate co-located pairs;
        # the layout must still be valid and within budget.
        strategy = ConnectivityPriorityStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0)),
            exclude_home_cluster=False,
        )
        layout = strategy.build_layout(small_graph, 16, 0.2)
        assert layout.num_replica_pages >= 0
        assert max(len(p) for p in layout.pages()) <= 16


class TestRpp:
    def test_layout_valid_and_within_budget(self, small_graph):
        strategy = RppStrategy(ShpPartitioner(ShpConfig(max_iterations=4, seed=0)))
        layout = build_layout(strategy, small_graph, 16, 0.2)
        assert layout.num_keys == small_graph.num_vertices
        assert max(len(p) for p in layout.pages()) <= 16

    def test_space_overhead_tracks_ratio(self, small_graph):
        strategy = RppStrategy(ShpPartitioner(ShpConfig(max_iterations=4, seed=0)))
        layout = strategy.build_layout(small_graph, 16, 0.4)
        assert 0.0 < layout.space_overhead() <= 0.45

    def test_zero_ratio_equals_plain_partition_page_count(self, small_graph):
        strategy = RppStrategy(ShpPartitioner(ShpConfig(max_iterations=4, seed=0)))
        layout = strategy.build_layout(small_graph, 16, 0.0)
        assert layout.space_overhead() == pytest.approx(0.0, abs=0.05)

    def test_replicates_hottest_vertices(self):
        # Vertex 0 is in every edge; at ratio enough for one replica,
        # vertex 0 must be the one replicated.
        graph = Hypergraph(8, [(0, 1), (0, 2), (0, 3), (0, 4), (5, 6, 7)])
        strategy = RppStrategy(ShpPartitioner(ShpConfig(seed=0)))
        layout = strategy.build_layout(graph, 4, ratio=0.125)  # 1 replica
        counts = layout.replica_counts()
        assert counts[0] == max(counts)


class TestFpr:
    def test_layout_valid(self, small_graph):
        strategy = FprStrategy(ShpPartitioner(ShpConfig(max_iterations=4, seed=0)))
        layout = strategy.build_layout(small_graph, 16, 0.2)
        assert layout.num_keys == small_graph.num_vertices
        assert max(len(p) for p in layout.pages()) <= 16

    def test_finer_partition_produces_more_pages(self, small_graph):
        plain = FprStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0))
        ).build_layout(small_graph, 16, 0.0)
        finer = FprStrategy(
            ShpPartitioner(ShpConfig(max_iterations=4, seed=0))
        ).build_layout(small_graph, 16, 0.5)
        assert finer.num_pages > plain.num_pages

    def test_fills_clusters_with_coappearing_vertices(self):
        graph = Hypergraph(8, [(0, 1, 2, 3), (0, 1, 2, 3), (4, 5, 6, 7)])
        strategy = FprStrategy(ShpPartitioner(ShpConfig(seed=0)))
        layout = strategy.build_layout(graph, 4, ratio=1.0)
        # With capacity 4 and ratio 1.0 we get 4 clusters of ~2 vertices,
        # each refilled to 4 with its most co-appearing partners.
        for page in layout.pages():
            assert len(page) == 4

    def test_works_with_vanilla_partitioner(self, small_graph):
        layout = FprStrategy(VanillaPlacement()).build_layout(
            small_graph, 16, 0.2
        )
        assert layout.num_keys == small_graph.num_vertices


class TestBudgetHelpers:
    @pytest.mark.parametrize(
        "n,d,r,expected",
        [(160, 16, 0.1, 1), (160, 16, 0.5, 5), (100, 10, 0.0, 0)],
    )
    def test_replica_page_budget(self, n, d, r, expected):
        assert ReplicationStrategy.replica_page_budget(n, d, r) == expected

    def test_budget_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            ReplicationStrategy.replica_page_budget(10, 0, 0.1)

    def test_check_ratio(self):
        assert ReplicationStrategy.check_ratio(0.3) == 0.3
        with pytest.raises(ConfigError):
            ReplicationStrategy.check_ratio(-1)
