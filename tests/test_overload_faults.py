"""Overload x faults interplay: both failure domains in one simulation.

A production-shaped scenario: bursty (non-homogeneous Poisson) arrivals
from :mod:`repro.workloads.temporal` offered to an engine whose device
injects transient read errors (:mod:`repro.faults`), behind admission
control and the brownout controller.  The two degradation sources must
coexist without stepping on each other's accounting: sheds and deadline
misses come from the traffic domain, retries/recoveries/fault losses
from the device domain, and every post-warmup arrival lands in exactly
one bucket.
"""

import pytest

from repro import (
    EngineConfig,
    FaultPlan,
    PageLayout,
    Query,
    ServingEngine,
)
from repro.overload import AdmissionConfig, BrownoutConfig
from repro.serving import OpenLoopSimulator, RetryPolicy
from repro.workloads.temporal import burst_rate, sample_arrivals


@pytest.fixture
def hot_cold_layout():
    """Keys 0/1/4/5 carry a replica (recoverable); 2/3/6/7 are cold."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4, 1, 5)],
    )


@pytest.fixture
def stream():
    return [Query((k % 8, (k + 1) % 8, (k + 5) % 8)) for k in range(300)]


@pytest.fixture
def bursty_arrivals():
    """A flash burst over a modest base rate, deterministic from seed.

    The base rate leaves the single worker comfortable (faulted serving
    included), so pre- and post-burst completions exercise the device
    domain at degrade level 0; the 50x burst in the middle overwhelms
    admission and drives the brownout controller up the ladder.
    """
    rate = burst_rate(
        10_000.0,
        burst_factor=50.0,
        burst_start_us=10_000.0,
        burst_duration_us=300.0,
    )
    return sample_arrivals(rate, count=300, peak_qps=500_000.0, seed=5)


def faulty_engine(layout) -> ServingEngine:
    return ServingEngine(
        layout,
        EngineConfig(
            cache_ratio=0.0,
            threads=1,
            fault_plan=FaultPlan(seed=9, read_error_rate=0.5),
            retry=RetryPolicy(max_retries=1),
        ),
    )


class TestOverloadWithFaults:
    def _run(self, layout, stream, arrivals):
        simulator = OpenLoopSimulator(
            faulty_engine(layout),
            seed=2,
            admission=AdmissionConfig(
                capacity=4, policy="deadline", queue_deadline_us=200.0
            ),
            brownout=BrownoutConfig(
                high_watermark_us=250.0,
                low_watermark_us=100.0,
                window=8,
                dwell_us=100.0,
                cool_down_observations=4,
            ),
        )
        return simulator.run_arrivals(
            stream, arrivals, warmup_fraction=0.1
        )

    def test_both_domains_counted(
        self, hot_cold_layout, stream, bursty_arrivals
    ):
        report = self._run(hot_cold_layout, stream, bursty_arrivals)
        # Traffic domain: the burst overwhelms a single worker.
        assert report.shed_count + report.deadline_misses > 0
        # Device domain: transient faults drive retries/recoveries on the
        # queries that were admitted and served.
        assert sum(r.retries for r in report.results) > 0
        assert sum(r.recovered_keys for r in report.results) > 0

    def test_every_arrival_lands_in_one_bucket(
        self, hot_cold_layout, stream, bursty_arrivals
    ):
        report = self._run(hot_cold_layout, stream, bursty_arrivals)
        assert (
            report.offered_count()
            == len(report.results)
            + report.shed_count
            + report.deadline_misses
        )

    def test_coverage_consistent_per_result(
        self, hot_cold_layout, stream, bursty_arrivals
    ):
        report = self._run(hot_cold_layout, stream, bursty_arrivals)
        for r in report.results:
            assert 0 <= r.missing_keys <= r.requested_keys
            assert r.full_coverage == (r.missing_keys == 0)
            # Recovered keys were served, so they can never exceed what
            # the query asked for minus what is still missing.
            assert r.recovered_keys <= r.requested_keys - r.missing_keys

    def test_brownout_engages_during_burst_faults_still_recover(
        self, hot_cold_layout, stream, bursty_arrivals
    ):
        report = self._run(hot_cold_layout, stream, bursty_arrivals)
        degraded = [r for r in report.results if r.degrade_level > 0]
        assert degraded, "the burst should push the controller off level 0"
        # Replica recovery keeps working inside degraded serving modes.
        assert sum(r.retries for r in degraded) > 0
        # The controller both escalates and (once pressure eases between
        # burst waves) steps back down — hysteresis in both directions.
        moves = [(t.from_level, t.to_level) for t in report.brownout_transitions]
        assert any(b > a for a, b in moves)
        assert any(b < a for a, b in moves)

    def test_deterministic_end_to_end(
        self, hot_cold_layout, stream, bursty_arrivals
    ):
        first = self._run(hot_cold_layout, stream, bursty_arrivals)
        second = self._run(hot_cold_layout, stream, bursty_arrivals)
        assert first.results == second.results
        assert first.shed == second.shed
        assert first.deadline_misses == second.deadline_misses

    def test_fault_free_overload_has_clean_device_counters(
        self, hot_cold_layout, stream, bursty_arrivals
    ):
        engine = ServingEngine(
            hot_cold_layout, EngineConfig(cache_ratio=0.0, threads=1)
        )
        simulator = OpenLoopSimulator(
            engine,
            seed=2,
            admission=AdmissionConfig(capacity=4),
        )
        report = simulator.run_arrivals(
            stream, bursty_arrivals, warmup_fraction=0.1
        )
        assert report.shed_count > 0
        assert sum(r.retries for r in report.results) == 0
        assert sum(r.recovered_keys for r in report.results) == 0
        # Overload shedding drops whole requests; admitted ones keep
        # full coverage when the device is healthy and nothing degrades.
        assert all(r.full_coverage for r in report.results)
