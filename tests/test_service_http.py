"""Tests for the HTTP transport: routes, status mapping, streaming, drain.

Each test runs a real ``asyncio.start_server`` gateway on an ephemeral
port and talks raw HTTP/1.1 to it — the same wire a production client
would see, including keep-alive reuse and chunked streaming.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import EngineConfig, PageLayout, Query, ServingEngine
from repro.overload import AdmissionConfig
from repro.service import (
    CoalescerConfig,
    GatewayCore,
    HttpGateway,
    HttpLoadGenerator,
    ServiceConfig,
    TenantConfig,
)


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4, 1, 5)],
    )


def make_engine(layout):
    return ServingEngine(layout, EngineConfig(cache_ratio=0.0, threads=2))


async def http_request(reader, writer, method, path, body=None):
    """One request on a kept-alive connection -> (status, payload dict)."""
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split(b" ")[1])
    length = 0
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    raw = await reader.readexactly(length) if length else b""
    return status, (json.loads(raw) if raw else {})


async def read_chunked(reader):
    """Consume a chunked body -> list of parsed JSON lines."""
    lines = []
    while True:
        size = int((await reader.readuntil(b"\r\n")).strip(), 16)
        if size == 0:
            await reader.readexactly(2)
            return lines
        data = await reader.readexactly(size)
        await reader.readexactly(2)
        lines.append(json.loads(data))


def serve(layout, config, scenario):
    """Run ``scenario(server, reader, writer)`` against a live gateway."""

    async def runner():
        core = GatewayCore(make_engine(layout), config)
        server = HttpGateway(core, port=0)
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.bound_port
        )
        try:
            return await scenario(server, reader, writer)
        finally:
            writer.close()
            await server.stop()

    return asyncio.run(runner())


class TestRoutes:
    def test_single_query_and_health_and_metrics(self, layout):
        async def scenario(server, r, w):
            status, payload = await http_request(
                r, w, "POST", "/query", {"keys": [0, 1, 2]}
            )
            health = await http_request(r, w, "GET", "/health")
            metrics = await http_request(r, w, "GET", "/metrics")
            return status, payload, health, metrics

        status, payload, (hs, health), (ms, metrics) = serve(
            layout, ServiceConfig(), scenario
        )
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["served"] == 3
        assert payload["missing"] == 0
        assert payload["tenant"] == "default"
        assert hs == 200 and health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert ms == 200
        svc = metrics["service"]
        assert svc["offered"] == 1
        assert svc["offered"] == svc["accounted"]
        assert metrics["open_loop"]["completed"] == 1
        assert metrics["serving"]["queries"] == 1

    def test_batch_query_aggregates(self, layout):
        async def scenario(server, r, w):
            return await http_request(
                r,
                w,
                "POST",
                "/query",
                {"queries": [{"keys": [0, 1]}, {"keys": [2]}, {"keys": [4]}]},
            )

        status, payload = serve(layout, ServiceConfig(), scenario)
        assert status == 200
        assert payload["served"] == 3
        assert payload["shed"] == 0
        assert len(payload["results"]) == 3
        assert all(p["status"] == "ok" for p in payload["results"])

    def test_streamed_batch_tags_members(self, layout):
        async def scenario(server, r, w):
            body = json.dumps(
                {
                    "queries": [{"keys": [k]} for k in (0, 1, 2, 3)],
                    "stream": True,
                }
            ).encode()
            w.write(
                (
                    "POST /query HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await w.drain()
            head = await r.readuntil(b"\r\n\r\n")
            assert b"Transfer-Encoding: chunked" in head
            return await read_chunked(r)

        lines = serve(layout, ServiceConfig(), scenario)
        assert len(lines) == 4
        assert sorted(line["index"] for line in lines) == [0, 1, 2, 3]
        assert all(line["http_status"] == 200 for line in lines)
        assert all(line["status"] == "ok" for line in lines)

    def test_error_statuses(self, layout):
        async def scenario(server, r, w):
            results = {}
            results["not_found"] = await http_request(r, w, "GET", "/nope")
            results["bad_method"] = await http_request(r, w, "GET", "/query")
            results["no_keys"] = await http_request(
                r, w, "POST", "/query", {"nope": 1}
            )
            results["empty_keys"] = await http_request(
                r, w, "POST", "/query", {"keys": []}
            )
            results["bad_key_type"] = await http_request(
                r, w, "POST", "/query", {"keys": ["a"]}
            )
            results["negative_key"] = await http_request(
                r, w, "POST", "/query", {"keys": [-1]}
            )
            results["bad_tenant"] = await http_request(
                r, w, "POST", "/query", {"keys": [0], "tenant": ""}
            )
            # Malformed requests never enter the accounting.
            _, metrics = await http_request(r, w, "GET", "/metrics")
            return results, metrics

        results, metrics = serve(layout, ServiceConfig(), scenario)
        assert results["not_found"][0] == 404
        assert results["bad_method"][0] == 405
        for name in (
            "no_keys",
            "empty_keys",
            "bad_key_type",
            "negative_key",
            "bad_tenant",
        ):
            assert results[name][0] == 400, name
            assert "error" in results[name][1]
        assert metrics["service"]["offered"] == 0

    def test_quota_maps_to_429(self, layout):
        config = ServiceConfig(
            tenants=(TenantConfig(name="metered", rate_qps=0.001, burst=1),)
        )

        async def scenario(server, r, w):
            first = await http_request(
                r, w, "POST", "/query", {"keys": [0], "tenant": "metered"}
            )
            second = await http_request(
                r, w, "POST", "/query", {"keys": [1], "tenant": "metered"}
            )
            return first, second

        first, second = serve(layout, config, scenario)
        assert first[0] == 200
        assert second[0] == 429
        assert second[1]["reason"] == "quota"

    def test_drain_endpoint_sheds_new_work(self, layout):
        async def scenario(server, r, w):
            drained = await http_request(r, w, "POST", "/drain")
            # The HTTP drain signal is observed by serve_until_drained;
            # here we invoke the core drain directly as the CLI would.
            await server.gateway.stop()
            late = await http_request(
                r, w, "POST", "/query", {"keys": [0]}
            )
            health = await http_request(r, w, "GET", "/health")
            return drained, late, health

        drained, late, health = serve(layout, ServiceConfig(), scenario)
        assert drained == (200, {"status": "draining"})
        assert late[0] == 503
        assert late[1]["reason"] == "drain"
        assert health[1]["status"] == "draining"


class TestBackpressureOverHttp:
    def test_admission_shed_maps_to_503(self, layout):
        """A saturated single-slot gateway with a one-deep waiting room
        must answer some of a concurrent burst with 503 tail-sheds."""
        config = ServiceConfig(
            coalescer=CoalescerConfig(enabled=False),
            admission=AdmissionConfig(capacity=1, policy="tail"),
            max_concurrent_batches=1,
            pace_service=True,
            time_scale=20.0,
        )

        async def scenario(server, r, w):
            port = server.bound_port

            async def one(key):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    return await http_request(
                        reader, writer, "POST", "/query", {"keys": [key]}
                    )
                finally:
                    writer.close()

            results = await asyncio.gather(*(one(i % 8) for i in range(16)))
            _, metrics = await http_request(r, w, "GET", "/metrics")
            return results, metrics

        results, metrics = serve(layout, config, scenario)
        statuses = sorted(status for status, _ in results)
        assert statuses.count(200) >= 1
        assert statuses.count(503) >= 1
        sheds = [p["reason"] for s, p in results if s == 503]
        assert set(sheds) <= {"tail"}
        svc = metrics["service"]
        assert svc["offered"] == 16
        assert svc["offered"] == svc["accounted"]


class TestHttpLoadGenerator:
    def test_loadgen_end_to_end(self, layout):
        config = ServiceConfig(
            coalescer=CoalescerConfig(max_batch=8, max_wait_us=500.0)
        )

        async def runner():
            core = GatewayCore(make_engine(layout), config)
            server = HttpGateway(core, port=0)
            await server.start()
            generator = HttpLoadGenerator(
                "127.0.0.1",
                server.bound_port,
                [Query((i % 8,)) for i in range(16)],
                concurrency=4,
                duration_s=0.4,
            )
            report = await generator.run()
            metrics = core.metrics()
            await server.stop()
            return report, metrics

        report, metrics = asyncio.run(runner())
        assert report.offered > 0
        assert report.errors == 0
        assert report.completed == metrics["service"]["completed"]
        assert report.offered == report.completed + report.shed_total
        assert report.goodput_qps() > 0
        assert report.as_dict()["statuses"] == {"200": report.completed}

    def test_max_requests_caps_the_run(self, layout):
        async def runner():
            core = GatewayCore(make_engine(layout), ServiceConfig())
            server = HttpGateway(core, port=0)
            await server.start()
            generator = HttpLoadGenerator(
                "127.0.0.1",
                server.bound_port,
                [Query((0,))],
                concurrency=2,
                duration_s=5.0,
                max_requests=7,
            )
            report = await generator.run()
            await server.stop()
            return report

        report = asyncio.run(runner())
        assert report.offered == 7
        assert report.completed == 7
        assert report.wall_s < 5.0
