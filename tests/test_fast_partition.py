"""Differential tests: the fast offline pipeline vs the reference loops.

The fast path's whole contract is bit-identity — same
``PartitionResult``, same scores, same replica pages, same final
``PageLayout`` — so every test here builds both and compares, with
hypothesis generating the traces.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro import Query, QueryTrace, ShpConfig, ShpPartitioner
from repro.core import MaxEmbedConfig, build_offline_layout
from repro.hypergraph import (
    HypergraphCsr,
    build_weighted_hypergraph,
    gather_rows,
)
from repro.hypergraph.csr import scatter_add_exact
from repro.partition import (
    FastShpPartitioner,
    edge_connectivities,
    fast_edge_connectivities,
)
from repro.replication import (
    ConnectivityPriorityStrategy,
    connectivity_scores,
    fast_connectivity_scores,
    fast_hotness_scores,
    fast_replica_pages,
    hotness_scores,
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def traces(draw, max_keys=60, max_queries=40):
    """A small random trace where every key appears in some query."""
    num_keys = draw(st.integers(min_value=4, max_value=max_keys))
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    key = st.integers(min_value=0, max_value=num_keys - 1)
    queries = draw(
        st.lists(
            st.lists(key, min_size=1, max_size=8, unique=True),
            min_size=num_queries,
            max_size=num_queries,
        )
    )
    return QueryTrace(num_keys, [Query(tuple(q)) for q in queries])


def _graph(trace):
    return build_weighted_hypergraph(trace)


class TestCsrRoundTrip:
    @SETTINGS
    @given(traces())
    def test_csr_matches_graph(self, trace):
        graph = _graph(trace)
        csr = graph.csr()
        assert csr is graph.csr()  # cached on the graph
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges
        for eid, edge, weight in graph.edge_items():
            assert csr.vertices_of_edge(eid).tolist() == list(edge)
            assert int(csr.weights[eid]) == weight
        for v in range(graph.num_vertices):
            assert sorted(csr.edges_of_vertex(v).tolist()) == sorted(
                graph.vertex_edges(v)
            )

    def test_gather_rows(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        values = np.array([10, 11, 20, 21, 22], dtype=np.int64)
        gathered, lengths = gather_rows(
            indptr, values, np.array([2, 0], dtype=np.int64)
        )
        assert gathered.tolist() == [20, 21, 22, 10, 11]
        assert lengths.tolist() == [3, 2]

    def test_scatter_add_exact_large_weights(self):
        # Past the float53 window the implementation must stay exact.
        index = np.array([0, 0, 1], dtype=np.int64)
        values = np.array([2**60, 3, 5], dtype=np.int64)
        out = scatter_add_exact(index, values, 2)
        assert out.tolist() == [2**60 + 3, 5]


class TestFastShpParity:
    @SETTINGS
    @given(
        traces(),
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from([2, 3, 4, 8]),
        st.sampled_from([0, 8, 48, 1000]),
    )
    def test_partition_identical(self, trace, seed, capacity, kl_threshold):
        graph = _graph(trace)
        config = ShpConfig(seed=seed, kl_threshold=kl_threshold)
        reference = ShpPartitioner(config).partition(graph, capacity)
        fast = FastShpPartitioner(config, workers=1).partition(
            graph, capacity
        )
        assert fast == reference

    def test_worker_count_invariance(self):
        rng = np.random.default_rng(11)
        queries = [
            Query(tuple(rng.choice(900, size=6, replace=False).tolist()))
            for _ in range(700)
        ]
        trace = QueryTrace(900, queries)
        graph = _graph(trace)
        config = ShpConfig(seed=5)
        serial = FastShpPartitioner(config, workers=1).partition(graph, 8)
        parallel = FastShpPartitioner(config, workers=3).partition(graph, 8)
        assert parallel == serial
        assert serial == ShpPartitioner(config).partition(graph, 8)

    @SETTINGS
    @given(traces())
    def test_generator_seed_parity(self, trace):
        # Generator seeds draw their entropy identically on both paths.
        graph = _graph(trace)
        ref_cfg = ShpConfig(seed=np.random.default_rng(3))
        fast_cfg = ShpConfig(seed=np.random.default_rng(3))
        reference = ShpPartitioner(ref_cfg).partition(graph, 4)
        fast = FastShpPartitioner(fast_cfg, workers=1).partition(graph, 4)
        assert fast == reference


class TestFastMetricsAndScoring:
    @SETTINGS
    @given(traces(), st.sampled_from([2, 4, 8]))
    def test_lambda_and_scores_identical(self, trace, capacity):
        graph = _graph(trace)
        assignment = (
            ShpPartitioner(ShpConfig(seed=1))
            .partition(graph, capacity)
            .assignment
        )
        ref_lambdas = edge_connectivities(graph, assignment)
        assert fast_edge_connectivities(graph, assignment) == ref_lambdas
        assert fast_connectivity_scores(
            graph, assignment
        ) == connectivity_scores(graph, assignment)
        assert fast_connectivity_scores(
            graph, assignment, lambdas=ref_lambdas
        ) == connectivity_scores(graph, assignment, lambdas=ref_lambdas)
        assert fast_hotness_scores(graph) == hotness_scores(graph)

    @SETTINGS
    @given(
        traces(),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=12),
        st.booleans(),
        st.sampled_from(["connectivity", "hotness"]),
    )
    def test_replica_pages_identical(
        self, trace, capacity, budget, exclude_home, scoring
    ):
        graph = _graph(trace)
        assignment = (
            ShpPartitioner(ShpConfig(seed=2))
            .partition(graph, capacity)
            .assignment
        )
        reference = ConnectivityPriorityStrategy(
            exclude_home_cluster=exclude_home, scoring=scoring
        ).build_replica_pages(graph, assignment, capacity, budget)
        fast = fast_replica_pages(
            graph,
            assignment,
            capacity,
            budget,
            exclude_home_cluster=exclude_home,
            scoring=scoring,
        )
        assert fast == reference


class TestEndToEndLayoutParity:
    @pytest.mark.parametrize("strategy", ["maxembed", "none", "rpp", "fpr"])
    def test_build_offline_layout_identical(self, strategy):
        rng = np.random.default_rng(23)
        queries = [
            Query(tuple(rng.choice(300, size=5, replace=False).tolist()))
            for _ in range(400)
        ]
        trace = QueryTrace(300, queries)
        reference = build_offline_layout(
            trace,
            MaxEmbedConfig(strategy=strategy, offline_path="reference"),
        )
        fast = build_offline_layout(
            trace,
            MaxEmbedConfig(
                strategy=strategy, offline_path="fast", offline_workers=1
            ),
        )
        assert fast.pages() == reference.pages()
        assert fast.num_base_pages == reference.num_base_pages

    def test_offline_path_validated(self):
        with pytest.raises(Exception):
            MaxEmbedConfig(offline_path="turbo")
        with pytest.raises(Exception):
            MaxEmbedConfig(offline_workers=-1)


class TestHypergraphCsrValidation:
    def test_rejects_out_of_range_pins(self):
        with pytest.raises(Exception):
            HypergraphCsr(
                num_vertices=2,
                edge_indptr=np.array([0, 1], dtype=np.int64),
                pin_vertices=np.array([5], dtype=np.int64),
                vertex_indptr=np.array([0, 0, 1], dtype=np.int64),
                vertex_edges=np.array([0], dtype=np.int64),
                weights=np.array([1], dtype=np.int64),
            )
