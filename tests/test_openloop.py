"""Tests for repro.serving.openloop: Poisson-arrival load simulation."""

import pytest

from repro import EngineConfig, PageLayout, Query, ServingEngine, ServingError
from repro.serving import OpenLoopSimulator
from repro.serving.openloop import OpenLoopReport, OpenLoopResult


@pytest.fixture
def engine():
    layout = PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7)],
    )
    return ServingEngine(layout, EngineConfig(cache_ratio=0.0, threads=2))


@pytest.fixture
def stream():
    return [Query((k % 8,)) for k in range(200)]


class TestOpenLoopResult:
    def test_latency_decomposition(self):
        result = OpenLoopResult(arrival_us=10.0, start_us=15.0, finish_us=40.0)
        assert result.queue_wait_us == pytest.approx(5.0)
        assert result.latency_us == pytest.approx(30.0)


class TestOpenLoopReport:
    def test_empty_report(self):
        report = OpenLoopReport(offered_qps=100.0)
        assert report.mean_latency_us() == 0.0
        assert report.percentile_latency_us(99) == 0.0
        assert report.mean_queue_wait_us() == 0.0
        assert report.achieved_qps() == 0.0


class TestSimulator:
    def test_low_load_has_no_queueing(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=0)
        report = simulator.run(stream, offered_qps=1000.0)
        # At 1k qps against a >100k qps engine, queue waits are ~zero.
        assert report.mean_queue_wait_us() < 1.0
        assert report.mean_latency_us() > 0.0

    def test_latency_grows_with_load(self, stream):
        def fresh_engine():
            layout = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
            return ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, threads=2)
            )

        low = OpenLoopSimulator(fresh_engine(), seed=0).run(
            stream, offered_qps=5_000.0
        )
        high = OpenLoopSimulator(fresh_engine(), seed=0).run(
            stream, offered_qps=2_000_000.0
        )
        assert high.mean_latency_us() > low.mean_latency_us()
        assert high.mean_queue_wait_us() > low.mean_queue_wait_us()

    def test_achieved_tracks_offered_at_low_load(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=1)
        report = simulator.run(stream, offered_qps=10_000.0)
        assert report.achieved_qps() == pytest.approx(10_000.0, rel=0.35)

    def test_warmup_excluded(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=0)
        report = simulator.run(stream, offered_qps=1000.0, warmup_fraction=0.5)
        assert len(report.results) == len(stream) - len(stream) // 2

    def test_deterministic_under_seed(self, stream):
        def run(seed):
            layout = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
            engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
            return OpenLoopSimulator(engine, seed=seed).run(
                stream, offered_qps=50_000.0
            )

        assert run(3).mean_latency_us() == run(3).mean_latency_us()

    def test_validation(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=0)
        with pytest.raises(ServingError):
            simulator.run(stream, offered_qps=0.0)
        with pytest.raises(ServingError):
            simulator.run([], offered_qps=100.0)
        with pytest.raises(ServingError):
            simulator.run(stream, offered_qps=100.0, warmup_fraction=1.0)

    def test_latency_curve(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=0)
        reports = simulator.latency_curve(
            stream, load_points=(0.1, 0.5), capacity_qps=100_000.0
        )
        assert len(reports) == 2
        assert reports[0].offered_qps < reports[1].offered_qps

    def test_latency_curve_validation(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=0)
        with pytest.raises(ServingError):
            simulator.latency_curve(stream, (0.5,), capacity_qps=0.0)
        with pytest.raises(ServingError):
            simulator.latency_curve(stream, (0.0,), capacity_qps=1000.0)

    def test_maxembed_lowers_tail_latency_under_load(
        self, criteo_small, shp_layout_small, maxembed_layout_small
    ):
        _, live = criteo_small
        queries = list(live)[:250]
        p99 = {}
        for name, layout in (
            ("shp", shp_layout_small),
            ("me", maxembed_layout_small),
        ):
            engine = ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, index_limit=5)
            )
            capacity = engine.serve_trace(queries).throughput_qps()
            engine2 = ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, index_limit=5)
            )
            report = OpenLoopSimulator(engine2, seed=0).run(
                queries, offered_qps=capacity * 0.7
            )
            p99[name] = report.percentile_latency_us(99)
        assert p99["me"] <= p99["shp"] * 1.1
