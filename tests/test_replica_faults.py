"""Replica groups: fault plans, health tracking, failover, hedging.

Contracts:

* :class:`ShardFaultPlan` draws are deterministic, serializable, and
  validated at construction;
* the health state machine walks healthy → suspect → dead →
  recovering → healthy exactly as documented, and dead replicas are
  never dispatched;
* a faulted or timed-out replica fails over inside the gather — the
  fragment is served by a survivor and cluster coverage holds;
* when every replica is down the router's shard-grain taxonomy applies
  (strict raise / resilient shard_errors);
* a crashed replica dies, resyncs after the delay, and rejoins via
  probe promotion — with full coverage throughout;
* hedging beats a gray-degraded primary and never exceeds its budget
  (``hedges <= hedge_budget * fragments`` at all times);
* ``replicas=1`` without a fault plan is bit-identical to the
  unreplicated engine and cluster (hypothesis parity).
"""

import dataclasses
import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    BreakerConfig,
    ClusterEngine,
    ConfigError,
    EngineConfig,
    HealthConfig,
    MaxEmbedConfig,
    Query,
    QueryTrace,
    ReplicaHealthMonitor,
    ServingEngine,
    ShardFaultPlan,
    ShardUnavailableError,
    ShpConfig,
    build_sharded_layout,
)
from repro.cluster.replicas.health import (
    DEAD,
    HEALTHY,
    RECOVERING,
    SUSPECT,
)


@pytest.fixture
def two_community_trace() -> QueryTrace:
    queries = (
        [Query((0, 1, 2, 3))] * 6
        + [Query((4, 5, 6, 7))] * 4
        + [Query((0, 1, 4, 5))] * 4
        + [Query((2, 3, 6, 7))] * 2
    )
    return QueryTrace(8, queries)


def make_cluster(trace, health=None, **engine_kwargs) -> ClusterEngine:
    config = MaxEmbedConfig(
        num_shards=2,
        shard_strategy="modulo",
        shp=ShpConfig(max_iterations=4),
    )
    sharded = build_sharded_layout(trace, config)
    return ClusterEngine(
        sharded,
        EngineConfig(cache_ratio=0.0, **engine_kwargs),
        replica_health=health,
    )


def break_engine(engine, exc: Exception) -> None:
    """Make one replica engine raise on every query."""

    def raiser(query, start_us=0.0):
        raise exc

    engine.serve_query = raiser


def slow_down(engine, delay_us: float) -> None:
    """Stretch every result of one replica engine by ``delay_us``."""
    original = engine.serve_query

    def wrapper(query, start_us=0.0):
        result = original(query, start_us)
        return dataclasses.replace(
            result, finish_us=result.finish_us + delay_us
        )

    engine.serve_query = wrapper


def single_crash_plan(**kwargs) -> ShardFaultPlan:
    """A plan whose deterministic draws crash exactly one replica."""
    for seed in range(200):
        plan = ShardFaultPlan(seed=seed, **kwargs)
        crashed = [
            (s, r)
            for s in range(2)
            for r in range(2)
            if plan.crash_window(s, r) is not None
        ]
        if len(crashed) == 1:
            return plan
    raise AssertionError("no single-crash seed in range")


class TestShardFaultPlan:
    def test_draws_are_deterministic(self):
        plan = ShardFaultPlan(seed=7, crash_rate=0.5, flap_rate=0.5)
        assert plan.crash_window(0, 1) == plan.crash_window(0, 1)
        assert plan.draw_flap(1, 0, 3) == plan.draw_flap(1, 0, 3)
        # Different seeds decorrelate the membership draws somewhere.
        other = ShardFaultPlan(seed=8, crash_rate=0.5, flap_rate=0.5)
        windows = lambda p: [  # noqa: E731
            p.crash_window(s, r) for s in range(8) for r in range(4)
        ]
        assert windows(plan) != windows(other)

    def test_crash_window_bounds_and_membership(self):
        plan = ShardFaultPlan(
            seed=3,
            crash_rate=1.0,
            crash_after_us=100.0,
            horizon_us=1_000.0,
            crash_duration_us=50.0,
        )
        start, end = plan.crash_window(0, 0)
        assert 100.0 <= start < 1_000.0
        assert end == start + 50.0
        assert not plan.crashed(0, 0, start - 1.0)
        assert plan.crashed(0, 0, start)
        assert not plan.crashed(0, 0, end + 1.0)
        assert ShardFaultPlan(crash_rate=0.0).crash_window(0, 0) is None

    def test_any_faults(self):
        assert not ShardFaultPlan().any_faults()
        assert ShardFaultPlan(crash_rate=0.1).any_faults()
        assert ShardFaultPlan(flap_rate=0.1).any_faults()
        assert ShardFaultPlan(degrade_rate=0.1).any_faults()

    def test_dict_round_trip_including_infinite_duration(self):
        plan = ShardFaultPlan(seed=5, crash_rate=0.25, degrade_rate=0.5)
        data = json.loads(json.dumps(plan.to_dict()))
        assert ShardFaultPlan.from_dict(data) == plan

    def test_from_spec_aliases(self):
        plan = ShardFaultPlan.from_spec(
            "seed=7,crash=0.1,flap=0.2,degrade=0.3,horizon_us=500"
        )
        assert plan.seed == 7
        assert plan.crash_rate == 0.1
        assert plan.flap_rate == 0.2
        assert plan.degrade_rate == 0.3
        assert plan.horizon_us == 500.0

    def test_from_spec_json_file(self, tmp_path):
        plan = ShardFaultPlan(seed=9, crash_rate=0.5, horizon_us=250.0)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert ShardFaultPlan.from_spec(str(path)) == plan

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": 1.5},
            {"flap_rate": -0.1},
            {"horizon_us": 0.0},
            {"crash_after_us": 2_000_000.0},
            {"crash_duration_us": 0.0},
            {"degrade_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ShardFaultPlan(**kwargs)


class TestHealthStateMachine:
    def test_starts_healthy_and_dispatches_in_order(self):
        monitor = ReplicaHealthMonitor(3)
        assert monitor.states == [HEALTHY] * 3
        assert monitor.dispatch_order() == [0, 1, 2]

    def test_consecutive_failures_walk_to_dead(self):
        monitor = ReplicaHealthMonitor(2)
        monitor.record_failure(0, 10.0)
        assert monitor.states[0] == HEALTHY
        monitor.record_failure(0, 20.0)
        assert monitor.states[0] == SUSPECT
        monitor.record_failure(0, 30.0)
        monitor.record_failure(0, 40.0)
        assert monitor.states[0] == DEAD
        assert monitor.dead_since_us[0] == 40.0
        assert monitor.dispatch_order() == [1]

    def test_suspect_clears_after_score_decays(self):
        monitor = ReplicaHealthMonitor(1)
        monitor.record_failure(0, 1.0)
        monitor.record_failure(0, 2.0)
        assert monitor.states[0] == SUSPECT
        for t in (3.0, 4.0, 5.0):
            monitor.record_success(0, 10.0, t)
        assert monitor.states[0] == HEALTHY

    def test_recovering_promotes_after_consecutive_successes(self):
        monitor = ReplicaHealthMonitor(1)
        for t in range(4):
            monitor.record_failure(0, float(t))
        assert monitor.states[0] == DEAD
        monitor.mark_recovering(0, 50.0)
        assert monitor.states[0] == RECOVERING
        monitor.record_probe(0, True, 60.0)
        assert monitor.states[0] == RECOVERING
        monitor.record_probe(0, True, 80.0)
        assert monitor.states[0] == HEALTHY

    def test_recovering_dies_on_single_failure(self):
        monitor = ReplicaHealthMonitor(1)
        for t in range(4):
            monitor.record_failure(0, float(t))
        monitor.mark_recovering(0, 50.0)
        monitor.record_probe(0, False, 60.0)
        assert monitor.states[0] == DEAD

    def test_mark_recovering_ignores_live_replicas(self):
        monitor = ReplicaHealthMonitor(1)
        monitor.mark_recovering(0, 1.0)
        assert monitor.states[0] == HEALTHY
        assert monitor.transitions == []

    def test_resync_and_probe_scheduling(self):
        config = HealthConfig(probe_interval_us=10.0, resync_delay_us=30.0)
        monitor = ReplicaHealthMonitor(2, config)
        for t in range(4):
            monitor.record_failure(0, float(t))
        assert not monitor.resync_due(0, 20.0)
        assert monitor.resync_due(0, 33.0)
        monitor.mark_recovering(0, 33.0)
        assert monitor.probes_due(34.0) == [0]
        monitor.record_probe(0, True, 34.0)
        assert monitor.probes_due(40.0) == []
        assert monitor.probes_due(44.0) == [0]

    def test_state_counts_cover_all_states(self):
        monitor = ReplicaHealthMonitor(2)
        counts = monitor.state_counts()
        assert counts == {
            "healthy": 2, "suspect": 0, "recovering": 0, "dead": 0
        }

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReplicaHealthMonitor(0)
        with pytest.raises(ConfigError):
            HealthConfig(clear_error_score=0.9, suspect_error_score=0.5)
        with pytest.raises(ConfigError):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            HealthConfig(promote_successes=0)


class TestFailover:
    def test_broken_replica_fails_over_with_full_coverage(
        self, two_community_trace
    ):
        cluster = make_cluster(two_community_trace, replicas=2)
        break_engine(
            cluster.groups[0].engines[0], RuntimeError("replica down")
        )
        report = cluster.serve_trace(two_community_trace)
        assert report.coverage() == 1.0
        assert report.shard_errors == [0, 0]
        # The first dispatch fails over; after that the error score
        # routes primary traffic away from the broken replica entirely.
        assert report.shard_failovers[0] >= 1
        assert report.shard_failovers[1] == 0
        monitor = cluster.groups[0].monitor
        assert monitor.dispatch_order()[0] == 1
        assert monitor.failures[0] >= 1

    def test_timeout_failover_pays_the_deadline(self, two_community_trace):
        # One simulated worker: with concurrent closed-loop workers the
        # survivor's device queue (everyone failing over to it at once)
        # legitimately pushes later fragments past the deadline too.
        cluster = make_cluster(
            two_community_trace,
            replicas=2,
            shard_deadline_us=5_000.0,
            threads=1,
        )
        slow_down(cluster.groups[0].engines[0], 50_000.0)
        report = cluster.serve_trace(two_community_trace)
        assert report.coverage() == 1.0
        assert report.shard_timeouts == [0, 0]
        assert report.shard_failovers[0] > 0
        # The caller waited out the deadline before the failover, so
        # those queries observe at least one full deadline of latency.
        assert max(report.max_shard_latency_us) >= 5_000.0

    def test_all_replicas_down_strict_raises(self, two_community_trace):
        cluster = make_cluster(two_community_trace, replicas=2)
        for engine in cluster.groups[0].engines:
            break_engine(engine, RuntimeError("rack power loss"))
        with pytest.raises(ShardUnavailableError):
            cluster.serve_trace(two_community_trace)

    def test_all_replicas_down_resilient_degrades(self, two_community_trace):
        cluster = make_cluster(
            two_community_trace,
            replicas=2,
            breaker=BreakerConfig(failure_threshold=1_000),
        )
        for engine in cluster.groups[0].engines:
            break_engine(engine, RuntimeError("rack power loss"))
        report = cluster.serve_trace(two_community_trace)
        assert report.shard_errors[0] > 0
        assert report.shard_errors[1] == 0
        assert 0.0 < report.coverage() < 1.0

    def test_flapping_replica_is_masked(self, two_community_trace):
        # Deterministically pick a seed where exactly one replica flaps,
        # so every flapped dispatch has a clean survivor to fail over to.
        for seed in range(200):
            plan = ShardFaultPlan(
                seed=seed, flap_rate=0.5, flap_failure_rate=1.0
            )
            members = [
                (s, r)
                for s in range(2)
                for r in range(2)
                if plan.draw_flap(s, r, 0) or plan.draw_flap(s, r, 1)
            ]
            if len(set(m[0] for m in members)) == len(members) == 1:
                break
        cluster = make_cluster(
            two_community_trace, replicas=2, shard_fault_plan=plan
        )
        report = cluster.serve_trace(two_community_trace)
        assert report.coverage() == 1.0
        assert sum(report.shard_failovers) > 0


class TestCrashResync:
    # Windows sized to the trace: the x8 two-community trace spans
    # ~100 simulated microseconds, so a crash in [0, 8) lasting 12 us
    # dies mid-trace and has room to resync and be promoted back.
    def crash_plan(self) -> ShardFaultPlan:
        return single_crash_plan(
            crash_rate=0.5,
            horizon_us=8.0,
            crash_duration_us=12.0,
        )

    def long_trace(self, base: QueryTrace) -> QueryTrace:
        return QueryTrace(base.num_keys, list(base.queries) * 8)

    def test_crash_dies_resyncs_and_rejoins(self, two_community_trace):
        trace = self.long_trace(two_community_trace)
        health = HealthConfig(probe_interval_us=1.0, resync_delay_us=3.0)
        cluster = make_cluster(
            trace,
            health=health,
            replicas=2,
            shard_fault_plan=self.crash_plan(),
        )
        report = cluster.serve_trace(trace)
        # The crash is fully masked: a survivor serves every fragment.
        assert report.coverage() == 1.0
        assert report.shard_errors == [0, 0]
        assert sum(report.shard_failovers) > 0
        # The crashed replica died, was resynced, and was probed back:
        # healthy -> suspect -> dead -> recovering -> ... -> healthy.
        assert sum(report.replica_resyncs) > 0
        assert sum(report.replica_probes) > 0
        assert sum(report.replica_transitions) >= 4
        assert report.dead_replicas() == 0
        edges = [
            (t.from_state, t.to_state)
            for g in cluster.groups
            for t in g.monitor.transitions
        ]
        assert (SUSPECT, DEAD) in edges
        assert (DEAD, RECOVERING) in edges
        assert (RECOVERING, HEALTHY) in edges

    def test_resync_stages_artifacts_when_directory_given(
        self, two_community_trace, tmp_path
    ):
        trace = self.long_trace(two_community_trace)
        plan = self.crash_plan()
        health = HealthConfig(probe_interval_us=1.0, resync_delay_us=3.0)
        config = MaxEmbedConfig(
            num_shards=2,
            shard_strategy="modulo",
            shp=ShpConfig(max_iterations=4),
        )
        sharded = build_sharded_layout(trace, config)
        cluster = ClusterEngine(
            sharded,
            EngineConfig(
                cache_ratio=0.0, replicas=2, shard_fault_plan=plan
            ),
            replica_health=health,
            replica_staging_dir=str(tmp_path),
        )
        report = cluster.serve_trace(trace)
        assert sum(report.replica_resyncs) > 0
        staged = list(tmp_path.iterdir())
        assert staged, "resync should stage layout artifacts on disk"


class TestHedging:
    def hedging_cluster(self, trace, **overrides):
        kwargs = dict(
            replicas=2,
            shard_fault_plan=ShardFaultPlan(
                seed=1, degrade_rate=0.5, degrade_factor=5.0
            ),
            hedge_quantile=0.7,
            hedge_budget=0.5,
        )
        kwargs.update(overrides)
        return make_cluster(trace, **kwargs)

    def long_trace(self, base: QueryTrace) -> QueryTrace:
        return QueryTrace(base.num_keys, list(base.queries) * 8)

    def test_hedges_beat_a_gray_degraded_primary(self, two_community_trace):
        trace = self.long_trace(two_community_trace)
        cluster = self.hedging_cluster(trace)
        report = cluster.serve_trace(trace)
        assert report.coverage() == 1.0
        assert sum(report.shard_hedges) > 0
        assert sum(report.shard_hedge_wins) > 0
        baseline = self.hedging_cluster(trace, hedge_quantile=None)
        plain = baseline.serve_trace(trace)
        assert sum(plain.shard_hedges) == 0

    def test_hedge_budget_is_a_hard_cap(self, two_community_trace):
        trace = self.long_trace(two_community_trace)
        cluster = self.hedging_cluster(trace, hedge_budget=0.05)
        report = cluster.serve_trace(trace)
        for group in cluster.groups:
            assert group.hedges <= 0.05 * group.fragments
        assert sum(report.shard_hedges_denied) > 0
        assert sum(report.shard_hedges) <= 0.05 * sum(report.shard_queries)

    def test_zero_budget_disables_hedging_entirely(
        self, two_community_trace
    ):
        trace = self.long_trace(two_community_trace)
        cluster = self.hedging_cluster(trace, hedge_budget=0.0)
        report = cluster.serve_trace(trace)
        assert sum(report.shard_hedges) == 0
        assert sum(report.shard_hedge_wins) == 0
        assert sum(report.shard_hedges_denied) > 0

    def test_hedge_rate_respects_budget(self, two_community_trace):
        trace = self.long_trace(two_community_trace)
        cluster = self.hedging_cluster(trace, hedge_budget=0.2)
        report = cluster.serve_trace(trace)
        assert report.hedge_rate() <= 0.2


class TestConfigWiring:
    def test_engine_config_validation(self):
        with pytest.raises(Exception):
            EngineConfig(replicas=0)
        with pytest.raises(Exception):
            EngineConfig(hedge_quantile=1.5)
        with pytest.raises(Exception):
            EngineConfig(hedge_budget=-0.1)

    def test_core_config_validation(self):
        with pytest.raises(ConfigError):
            MaxEmbedConfig(replicas=0)
        with pytest.raises(ConfigError):
            MaxEmbedConfig(hedge_quantile=0.0)
        with pytest.raises(ConfigError):
            MaxEmbedConfig(hedge_budget=-1.0)
        config = MaxEmbedConfig(replicas=2, hedge_quantile=0.95)
        assert config.replicas == 2

    def test_groups_only_built_when_useful(self, two_community_trace):
        plain = make_cluster(two_community_trace)
        assert plain.groups is None
        assert plain.replica_info() is None
        replicated = make_cluster(two_community_trace, replicas=2)
        assert len(replicated.groups) == 2
        # R=1 plus a fault plan is the unprotected baseline: groups
        # exist (to inject against) but there is nowhere to fail over.
        exposed = make_cluster(
            two_community_trace,
            replicas=1,
            shard_fault_plan=ShardFaultPlan(crash_rate=0.1),
        )
        assert len(exposed.groups) == 2
        assert exposed.groups[0].num_replicas == 1


@st.composite
def sharded_traces(draw):
    """A small two-shard-buildable trace."""
    n = draw(st.integers(min_value=8, max_value=16))
    num_queries = draw(st.integers(min_value=2, max_value=8))
    queries = []
    for _ in range(num_queries):
        size = draw(st.integers(min_value=1, max_value=min(6, n)))
        keys = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        queries.append(Query(tuple(keys)))
    return QueryTrace(n, queries)


class TestReplicasOneParity:
    """``replicas=1`` with no fault plan must be invisible."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=sharded_traces())
    def test_cluster_report_is_bit_identical(self, trace):
        config = MaxEmbedConfig(
            num_shards=2,
            shard_strategy="modulo",
            shp=ShpConfig(max_iterations=2),
        )
        sharded = build_sharded_layout(trace, config)
        baseline = ClusterEngine(
            sharded, EngineConfig(cache_ratio=0.0)
        ).serve_trace(trace)
        replicated = ClusterEngine(
            sharded, EngineConfig(cache_ratio=0.0, replicas=1)
        ).serve_trace(trace)
        assert baseline == replicated
        assert baseline.as_dict() == replicated.as_dict()

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=sharded_traces())
    def test_engine_report_is_bit_identical(self, trace):
        config = MaxEmbedConfig(shp=ShpConfig(max_iterations=2))
        sharded = build_sharded_layout(
            trace,
            dataclasses.replace(config, num_shards=1,
                                shard_strategy="modulo"),
        )
        layout = sharded.layouts[0]
        baseline = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0)
        ).serve_trace(trace)
        replicated = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0, replicas=1)
        ).serve_trace(trace)
        assert baseline == replicated
