"""Submission-queue backpressure: stalls, clock advance, full queues.

``_submit_with_backpressure`` / ``_submit_batch_with_backpressure``
mirror an SPDK submitter: when the queue is full, the submitting CPU
polls completions until a slot frees, advancing its clock to that
completion.  Pinned here:

* the queue-depth bound is never violated, whatever the page stream;
* a stalled submission's clock advances exactly to the freed
  completion's time (never backwards, never short);
* a device that reports a full queue but no pending completion (a
  broken stub — impossible for the real model) does not hang either
  helper;
* end-to-end, a depth-2 device serves every query with full coverage
  on both the paged and batched paths.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import EngineConfig, PageLayout, Query, ServingEngine, SimulatedSsd
from repro.serving.executor import Executor
from repro.ssd import Completion, ReadCommand, SsdProfile

TINY = SsdProfile(
    "tiny-queue", read_latency_us=10.0, bandwidth_gb_s=4.096, queue_depth=2
)


def tiny_device(queue_depth=2):
    profile = SsdProfile(
        "tiny-queue",
        read_latency_us=10.0,
        bandwidth_gb_s=4.096,  # 1 µs per 4 KiB page
        queue_depth=queue_depth,
    )
    return SimulatedSsd(profile)


class TestSingleSubmitBackpressure:
    def test_stall_advances_clock_to_freed_completion(self):
        device = tiny_device(queue_depth=1)
        first, now = Executor._submit_with_backpressure(device, 0, 0.0)
        assert now == 0.0
        # The queue is full: the next submission must stall until the
        # first read completes, and submit at exactly that time.
        second, now = Executor._submit_with_backpressure(device, 1, 0.0)
        assert now == first.completed_at_us
        assert second.submitted_at_us == first.completed_at_us

    def test_no_stall_below_depth(self):
        device = tiny_device(queue_depth=4)
        for page in range(4):
            _, now = Executor._submit_with_backpressure(device, page, 5.0)
            assert now == 5.0

    @settings(max_examples=50, deadline=None)
    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=40
        ),
        queue_depth=st.integers(min_value=1, max_value=4),
    )
    def test_queue_bound_and_monotone_clock(self, pages, queue_depth):
        device = tiny_device(queue_depth=queue_depth)
        now = 0.0
        completions = []
        for page in pages:
            assert device.inflight <= queue_depth
            completion, next_now = Executor._submit_with_backpressure(
                device, page, now
            )
            assert next_now >= now  # the clock never runs backwards
            assert completion.submitted_at_us == next_now
            now = next_now
            completions.append(completion)
        assert len(completions) == len(pages)
        # Every accepted read eventually retires.
        device.drain()
        assert device.inflight == 0


class TestBatchSubmitBackpressure:
    def test_batch_chunks_on_headroom(self):
        device = tiny_device(queue_depth=2)
        commands = [ReadCommand(p) for p in range(5)]
        completions, now = Executor._submit_batch_with_backpressure(
            device, commands, 0.0
        )
        assert len(completions) == 5
        # The tail chunks stalled: the final clock sits at a completion
        # time of an earlier read, strictly after the submit time.
        assert now > 0.0
        assert completions[-1].submitted_at_us == now

    def test_batch_within_headroom_shares_timestamp(self):
        device = tiny_device(queue_depth=8)
        commands = [ReadCommand(p) for p in range(5)]
        completions, now = Executor._submit_batch_with_backpressure(
            device, commands, 3.0
        )
        assert now == 3.0
        assert all(c.submitted_at_us == 3.0 for c in completions)

    @settings(max_examples=50, deadline=None)
    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=40
        ),
        queue_depth=st.integers(min_value=1, max_value=4),
        now=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_batch_equals_looped_backpressure(self, pages, queue_depth, now):
        """Chunked batch submission == one-at-a-time backpressure.

        With zero submit overhead the two must be bit-identical even
        through stalls — the chunking is an optimization of who polls,
        not a different service model.
        """
        batch_dev = tiny_device(queue_depth=queue_depth)
        loop_dev = tiny_device(queue_depth=queue_depth)
        batched, batch_now = Executor._submit_batch_with_backpressure(
            batch_dev, [ReadCommand(p) for p in pages], now
        )
        looped = []
        loop_now = now
        for page in pages:
            completion, loop_now = Executor._submit_with_backpressure(
                loop_dev, page, loop_now
            )
            looped.append(completion)
        assert batched == looped
        assert batch_now == loop_now


class BrokenFullQueueDevice:
    """A stub reporting a full queue with nothing in flight.

    The real device model cannot reach this state (a full queue implies
    a pending completion), but the helpers must not hang on a wrapper
    that misreports it.
    """

    queue_depth = 0
    inflight = 0

    def __init__(self):
        self.submissions = []
        self._ticket = 0

    def next_completion_time(self):
        return None

    def poll(self, now_us):  # pragma: no cover - break precedes polling
        return []

    def submit_read(self, page_id, now_us):
        self._ticket += 1
        self.submissions.append((page_id, now_us))
        return Completion(self._ticket, page_id, now_us, now_us + 1.0)

    def submit_batch(self, commands, now_us):
        return [self.submit_read(c.page_id, now_us) for c in commands]


class TestBrokenDeviceDoesNotHang:
    def test_single_submit_breaks_out(self):
        device = BrokenFullQueueDevice()
        completion, now = Executor._submit_with_backpressure(
            device, 7, 2.0
        )
        assert now == 2.0
        assert completion.page_id == 7
        assert device.submissions == [(7, 2.0)]

    def test_batch_submit_breaks_out(self):
        device = BrokenFullQueueDevice()
        completions, now = Executor._submit_batch_with_backpressure(
            device, [ReadCommand(1), ReadCommand(2)], 2.0
        )
        # The break abandons the batch rather than spinning forever.
        assert completions == []
        assert now == 2.0


class TestEndToEndTinyQueue:
    @pytest.mark.parametrize("path", ["paged", "batched"])
    def test_depth_two_device_serves_fully(self, path):
        pages = [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        ]
        layout = PageLayout(16, 4, pages, num_base_pages=4)
        engine = ServingEngine(
            layout,
            EngineConfig(
                cache_ratio=0.0,
                profile=TINY,
                executor="serial",
                device_command_path=path,
                threads=1,
            ),
        )
        queries = [Query(tuple(range(16)))] * 20
        report = engine.serve_trace(queries)
        assert report.coverage() == 1.0
        assert report.total_pages_read == 4 * len(queries)

    def test_paged_equals_batched_through_stalls(self):
        """Zero overhead: stalled batched serving is still bit-identical."""
        pages = [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        ]
        layout = PageLayout(16, 4, pages, num_base_pages=4)

        def build(path):
            return ServingEngine(
                layout,
                EngineConfig(
                    cache_ratio=0.0,
                    profile=TINY,
                    executor="serial",
                    device_command_path=path,
                    threads=1,
                ),
            )

        queries = [Query(tuple(range(16)))] * 20
        assert build("paged").serve_trace(queries) == build(
            "batched"
        ).serve_trace(queries)
