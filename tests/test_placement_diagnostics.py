"""Tests for repro.placement.diagnostics."""

import pytest

from repro import PageLayout, PlacementError, Query, QueryTrace
from repro.placement import hot_pair_coverage, layout_report


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (0, 4, 5),     # replica, 3/4 slots
            (0, 4, 6, 7),  # replica, full
        ],
        num_base_pages=2,
    )


class TestLayoutReport:
    def test_counts(self, layout):
        report = layout_report(layout)
        assert report.num_pages == 4
        assert report.num_base_pages == 2
        assert report.num_replica_pages == 2

    def test_slot_utilization(self, layout):
        report = layout_report(layout)
        assert report.slot_utilization == pytest.approx(15 / 16)
        assert report.replica_slot_utilization == pytest.approx(7 / 8)

    def test_replica_overlap(self, layout):
        report = layout_report(layout)
        # pages {0,4,5} and {0,4,6,7}: |∩|=2, |∪|=5.
        assert report.mean_replica_overlap == pytest.approx(2 / 5)

    def test_max_replica_count(self, layout):
        assert layout_report(layout).max_replica_count == 3  # key 0 and 4

    def test_no_replicas(self):
        plain = PageLayout(4, 4, [(0, 1, 2, 3)])
        report = layout_report(plain)
        assert report.mean_replica_overlap == 0.0
        assert report.replica_slot_utilization == 1.0

    def test_as_dict(self, layout):
        d = layout_report(layout).as_dict()
        assert set(d) >= {"slot_utilization", "mean_replica_overlap"}


class TestHotPairCoverage:
    def test_fully_covered(self, layout):
        trace = QueryTrace(8, [Query((0, 4))] * 5 + [Query((1, 2))] * 3)
        assert hot_pair_coverage(layout, trace) == 1.0

    def test_uncovered_pair(self, layout):
        trace = QueryTrace(8, [Query((1, 7))] * 5)
        assert hot_pair_coverage(layout, trace) == 0.0

    def test_partial(self, layout):
        trace = QueryTrace(
            8, [Query((0, 4))] * 5 + [Query((1, 7))] * 5
        )
        assert hot_pair_coverage(layout, trace, top_pairs=2) == 0.5

    def test_top_pairs_truncates(self, layout):
        trace = QueryTrace(
            8, [Query((0, 4))] * 9 + [Query((1, 7))] * 1
        )
        assert hot_pair_coverage(layout, trace, top_pairs=1) == 1.0

    def test_empty_pairs(self, layout):
        trace = QueryTrace(8, [Query((3,))])
        assert hot_pair_coverage(layout, trace) == 0.0

    def test_validation(self, layout):
        trace = QueryTrace(8, [Query((0, 4))])
        with pytest.raises(PlacementError):
            hot_pair_coverage(layout, trace, top_pairs=0)
        with pytest.raises(PlacementError):
            hot_pair_coverage(layout, QueryTrace(9, [Query((0,))]))

    def test_replication_raises_coverage(self, criteo_small):
        from repro import MaxEmbedConfig, ShpConfig
        from repro.core import build_offline_layout

        history, live = criteo_small
        base = build_offline_layout(
            history,
            MaxEmbedConfig(
                strategy="none", shp=ShpConfig(max_iterations=6, seed=0)
            ),
        )
        replicated = build_offline_layout(
            history,
            MaxEmbedConfig(
                replication_ratio=0.4,
                shp=ShpConfig(max_iterations=6, seed=0),
            ),
        )
        assert hot_pair_coverage(replicated, live) >= hot_pair_coverage(
            base, live
        )
