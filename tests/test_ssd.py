"""Tests for repro.ssd: clock, profiles, page store, device model, RAID."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    EmbeddingSpec,
    P4510,
    P5800X,
    RAID0_2X_P5800X,
    SimulatedSsd,
    SsdProfile,
    StorageError,
)
from repro.ssd import GENERIC_NAND, PROFILES, PageStore, Raid0Array, SimClock
from repro.ssd.page_store import (
    extract_embedding,
    materialize_layout,
    pack_embeddings,
    unpack_embeddings,
)
from repro.placement import PageLayout


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now == 5.0

    def test_advance_to_is_monotonic(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(20.0)
        assert clock.now == 20.0

    def test_rejects_negative(self):
        with pytest.raises(StorageError):
            SimClock(-1.0)
        with pytest.raises(StorageError):
            SimClock().advance(-1.0)


class TestProfiles:
    def test_paper_figures_for_p5800x(self):
        assert P5800X.read_latency_us == 5.0
        assert P5800X.bandwidth_gb_s > 7.0

    def test_p4510_is_slower_nand(self):
        assert P4510.read_latency_us > P5800X.read_latency_us
        assert P4510.bandwidth_gb_s < P5800X.bandwidth_gb_s

    def test_raid0_doubles_bandwidth(self):
        assert RAID0_2X_P5800X.bandwidth_gb_s == pytest.approx(
            2 * P5800X.bandwidth_gb_s
        )
        assert RAID0_2X_P5800X.read_latency_us == P5800X.read_latency_us

    def test_registry_contains_all(self):
        assert set(PROFILES) == {
            "p5800x", "p4510", "raid0", "nand", "p5800x-ndp"
        }
        assert PROFILES["nand"] is GENERIC_NAND

    def test_transfer_time(self):
        profile = SsdProfile("t", read_latency_us=1.0, bandwidth_gb_s=1.0)
        # 1 GB/s = 1000 bytes/us; a 4096-byte page takes 4.096 us.
        assert profile.transfer_time_us(4096) == pytest.approx(4.096)

    def test_max_page_reads_per_second(self):
        profile = SsdProfile("t", read_latency_us=1.0, bandwidth_gb_s=4.096)
        assert profile.max_page_reads_per_second(4096) == pytest.approx(1e6)

    def test_scaled(self):
        doubled = P4510.scaled("2x", 2.0)
        assert doubled.bandwidth_gb_s == pytest.approx(6.4)
        assert doubled.read_latency_us == P4510.read_latency_us

    def test_validation(self):
        with pytest.raises(ConfigError):
            SsdProfile("bad", read_latency_us=0, bandwidth_gb_s=1)
        with pytest.raises(ConfigError):
            SsdProfile("bad", read_latency_us=1, bandwidth_gb_s=0)
        with pytest.raises(ConfigError):
            SsdProfile("bad", 1, 1, queue_depth=0)
        with pytest.raises(ConfigError):
            P5800X.scaled("bad", 0)
        with pytest.raises(ConfigError):
            P5800X.transfer_time_us(-1)
        with pytest.raises(ConfigError):
            P5800X.max_page_reads_per_second(0)


class TestPageStore:
    def test_write_read_round_trip(self):
        store = PageStore(page_size=64, num_pages=4)
        store.write_page(1, b"hello")
        page = store.read_page(1)
        assert page.startswith(b"hello")
        assert len(page) == 64

    def test_unwritten_page_is_zero(self):
        store = PageStore(page_size=16, num_pages=2)
        assert store.read_page(0) == b"\x00" * 16

    def test_rejects_oversized_payload(self):
        store = PageStore(page_size=8, num_pages=1)
        with pytest.raises(StorageError):
            store.write_page(0, b"123456789")

    def test_rejects_bad_page_id(self):
        store = PageStore(page_size=8, num_pages=1)
        with pytest.raises(StorageError):
            store.read_page(1)
        with pytest.raises(StorageError):
            store.write_page(-1, b"")

    def test_written_pages_counter(self):
        store = PageStore(page_size=8, num_pages=4)
        store.write_page(0, b"a")
        store.write_page(0, b"b")
        store.write_page(2, b"c")
        assert store.written_pages() == 2


class TestPackUnpack:
    def test_round_trip(self):
        spec = EmbeddingSpec(dim=4, page_size=64)
        vectors = np.arange(12, dtype=np.float32).reshape(3, 4)
        payload = pack_embeddings(vectors, spec)
        out = unpack_embeddings(payload, 3, spec)
        assert np.array_equal(out, vectors)

    def test_pack_rejects_wrong_shape(self):
        spec = EmbeddingSpec(dim=4, page_size=64)
        with pytest.raises(StorageError):
            pack_embeddings(np.zeros((2, 5), dtype=np.float32), spec)

    def test_pack_rejects_too_many(self):
        spec = EmbeddingSpec(dim=4, page_size=32)  # 2 slots
        with pytest.raises(StorageError):
            pack_embeddings(np.zeros((3, 4), dtype=np.float32), spec)

    def test_unpack_rejects_short_payload(self):
        spec = EmbeddingSpec(dim=4, page_size=64)
        with pytest.raises(StorageError):
            unpack_embeddings(b"\x00" * 8, 2, spec)

    def test_extract_embedding(self):
        spec = EmbeddingSpec(dim=2, page_size=32)
        vectors = np.array([[1, 2], [3, 4]], dtype=np.float32)
        payload = pack_embeddings(vectors, spec)
        out = extract_embedding(payload, (10, 20), 20, spec)
        assert np.array_equal(out, [3.0, 4.0])
        assert extract_embedding(payload, (10, 20), 99, spec) is None

    def test_materialize_layout(self):
        spec = EmbeddingSpec(dim=2, page_size=32)
        layout = PageLayout(4, 4, [(0, 1), (2, 3, 1)], num_base_pages=2)
        table = np.arange(8, dtype=np.float32).reshape(4, 2)
        store, page_keys = materialize_layout(layout, table, spec)
        assert page_keys == [(0, 1), (2, 3, 1)]
        payload = store.read_page(1)
        assert np.array_equal(
            extract_embedding(payload, page_keys[1], 1, spec), table[1]
        )

    def test_materialize_rejects_wrong_table(self):
        spec = EmbeddingSpec(dim=2, page_size=32)
        layout = PageLayout(2, 4, [(0, 1)])
        with pytest.raises(StorageError):
            materialize_layout(
                layout, np.zeros((3, 2), dtype=np.float32), spec
            )


class TestSimulatedSsd:
    def make_device(self, latency=10.0, bandwidth_gb_s=0.004096, qd=4):
        # 0.004096 GB/s => one 4096-byte page per millisecond.
        profile = SsdProfile(
            "test", read_latency_us=latency,
            bandwidth_gb_s=bandwidth_gb_s, queue_depth=qd,
        )
        return SimulatedSsd(profile, page_size=4096)

    def test_idle_read_completes_after_latency(self):
        dev = self.make_device()
        completion = dev.submit_read(0, now_us=100.0)
        assert completion.completed_at_us == pytest.approx(110.0)
        assert completion.latency_us == pytest.approx(10.0)

    def test_bandwidth_ceiling_serializes_reads(self):
        dev = self.make_device()  # 1 page per 1000 us
        first = dev.submit_read(0, 0.0)
        second = dev.submit_read(1, 0.0)
        assert first.completed_at_us == pytest.approx(10.0)
        # Second read starts only after the first transfer slot (1000 us).
        assert second.completed_at_us == pytest.approx(1010.0)

    def test_idle_gap_resets_service_cursor(self):
        dev = self.make_device()
        dev.submit_read(0, 0.0)
        late = dev.submit_read(1, 5000.0)
        assert late.completed_at_us == pytest.approx(5010.0)

    def test_poll_retires_in_completion_order(self):
        dev = self.make_device()
        dev.submit_read(0, 0.0)
        dev.submit_read(1, 0.0)
        assert dev.inflight == 2
        done = dev.poll(10.0)
        assert [c.page_id for c in done] == [0]
        assert dev.inflight == 1
        assert dev.poll(5000.0)[0].page_id == 1
        assert dev.inflight == 0

    def test_queue_depth_enforced(self):
        dev = self.make_device(qd=2)
        dev.submit_read(0, 0.0)
        dev.submit_read(1, 0.0)
        with pytest.raises(StorageError):
            dev.submit_read(2, 0.0)

    def test_drain_returns_last_completion(self):
        dev = self.make_device()
        dev.submit_read(0, 0.0)
        last = dev.submit_read(1, 0.0)
        assert dev.drain() == pytest.approx(last.completed_at_us)
        assert dev.inflight == 0

    def test_next_completion_time(self):
        dev = self.make_device()
        assert dev.next_completion_time() is None
        c = dev.submit_read(0, 0.0)
        assert dev.next_completion_time() == pytest.approx(c.completed_at_us)

    def test_stats_accumulate(self):
        dev = self.make_device()
        dev.submit_read(0, 0.0)
        dev.submit_read(1, 0.0)
        assert dev.stats.reads == 2
        assert dev.stats.bytes_read == 2 * 4096
        assert dev.stats.mean_latency_us() > 0
        dev.reset_stats()
        assert dev.stats.reads == 0

    def test_delivered_bandwidth(self):
        dev = self.make_device()
        dev.submit_read(0, 0.0)
        gbps = dev.delivered_bandwidth_gb_s(1000.0)
        assert gbps == pytest.approx(4096 / 1e-3 / 1e9)
        assert dev.delivered_bandwidth_gb_s(0.0) == 0.0

    def test_rejects_bad_args(self):
        dev = self.make_device()
        with pytest.raises(StorageError):
            dev.submit_read(-1, 0.0)
        with pytest.raises(StorageError):
            dev.submit_read(0, -1.0)
        with pytest.raises(StorageError):
            SimulatedSsd(P5800X, page_size=0)


class TestRaid0:
    def test_stripes_by_page_id(self):
        array = Raid0Array(P5800X, members=2)
        a = array.submit_read(0, 0.0)
        b = array.submit_read(1, 0.0)
        # Different members: both complete at the idle latency.
        assert a.completed_at_us == pytest.approx(b.completed_at_us)

    def test_same_stripe_serializes(self):
        slow = SsdProfile("slow", 10.0, 0.004096, queue_depth=16)
        array = Raid0Array(slow, members=2)
        first = array.submit_read(0, 0.0)
        second = array.submit_read(2, 0.0)  # same member (even pages)
        assert second.completed_at_us > first.completed_at_us

    def test_aggregate_stats(self):
        array = Raid0Array(P5800X, members=2)
        array.submit_read(0, 0.0)
        array.submit_read(1, 0.0)
        assert array.stats.reads == 2
        assert array.inflight == 2
        array.poll(1e9)
        assert array.inflight == 0
        array.reset_stats()
        assert array.stats.reads == 0

    def test_drain_and_next_completion(self):
        array = Raid0Array(P5800X, members=2)
        assert array.next_completion_time() is None
        c = array.submit_read(3, 0.0)
        assert array.next_completion_time() == pytest.approx(
            c.completed_at_us
        )
        assert array.drain() == pytest.approx(c.completed_at_us)

    def test_rejects_zero_members(self):
        with pytest.raises(StorageError):
            Raid0Array(P5800X, members=0)

    def test_queue_depth_aggregates_members(self):
        # The docstring promises aggregate capacity: per-member floor
        # times the member count (min * members under round-robin).
        for members in (1, 2, 4):
            array = Raid0Array(P5800X, members=members)
            assert array.queue_depth == members * P5800X.queue_depth
        single = SimulatedSsd(P5800X)
        assert single.queue_depth == P5800X.queue_depth

    def test_aggregate_queue_depth_accepted_round_robin(self):
        # Evenly striped submissions fill the whole advertised aggregate
        # queue without any member overflowing.
        qd = 4
        profile = SsdProfile("tiny-q", 10.0, 0.004096, queue_depth=qd)
        array = Raid0Array(profile, members=2)
        for page in range(array.queue_depth):
            array.submit_read(page, 0.0)
        assert array.inflight == 2 * qd

    def test_skewed_stripes_overflow_one_member(self):
        # The documented caveat: page ids all on one member overflow its
        # own queue well below the aggregate depth.
        qd = 4
        profile = SsdProfile("tiny-q", 10.0, 0.004096, queue_depth=qd)
        array = Raid0Array(profile, members=2)
        for page in range(0, 2 * qd, 2):  # even pages -> member 0 only
            if page // 2 < qd:
                array.submit_read(page, 0.0)
        with pytest.raises(StorageError):
            array.submit_read(2 * qd, 0.0)

    def test_stats_memoized_between_submits(self):
        array = Raid0Array(P5800X, members=2)
        for page in range(8):
            array.submit_read(page, 0.0)
        first = array.stats
        # Repeated access returns the same aggregate object — no
        # re-extending of per-member latency lists per call.
        assert array.stats is first
        assert len(first.latencies) == 8
        # A new submission invalidates the memo...
        array.submit_read(8, 0.0)
        refreshed = array.stats
        assert refreshed is not first
        assert refreshed.reads == 9
        assert len(refreshed.latencies) == 9
        # ...and the previously returned aggregate was not mutated.
        assert first.reads == 8
        # reset_stats also invalidates.
        array.reset_stats()
        assert array.stats.reads == 0
