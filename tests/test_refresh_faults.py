"""Chaos suite for the refresh daemon's repair paths.

Injects deterministic faults (:class:`~repro.faults.RefreshFaultPlan`)
into each stage of the repair ladder — the offline rebuild, the staged
artifact, and the swap itself — and proves the crash-safety contract:

* a corrupt staged artifact never reaches an engine (CRC validation
  turns it into a retried :class:`~repro.errors.RefreshError`);
* a failed swap always rolls back to the previous version — the cluster
  is never left partially swapped, in any seed;
* repeated failures trip the watchdog into ``degraded`` while the
  serving path keeps answering every query completely.
"""

import pytest

from repro import (
    ConfigError,
    EngineConfig,
    MaxEmbedConfig,
    RefreshConfig,
    RefreshDaemon,
    RefreshError,
    RefreshFaultPlan,
    ShpConfig,
    build_offline_layout,
    build_sharded_layout,
)
from repro.cluster import ClusterEngine
from repro.core import LayoutManager
from repro.refresh import STATE_DEGRADED, STATE_WATCHING, stage_layout
from repro.workloads.drift import drifted_trace_for


def _build_config(num_shards: int = 1) -> MaxEmbedConfig:
    return MaxEmbedConfig(
        strategy="maxembed",
        replication_ratio=0.2,
        shp=ShpConfig(max_iterations=6, seed=7),
        num_shards=num_shards,
        seed=7,
    )


def _daemon_config(**overrides) -> RefreshConfig:
    defaults = dict(
        interval_s=None,
        window_size=256,
        min_window=64,
        probe_max_queries=200,
        backoff_s=0.0,
        drop_fraction=0.10,
        max_retries=2,
        tier_first=False,
    )
    defaults.update(overrides)
    return RefreshConfig(**defaults)


@pytest.fixture(scope="module")
def drift_pair(criteo_small):
    history, live = criteo_small
    drifted = drifted_trace_for("criteo", scale="small", base_seed=7,
                                drift_seed=11)
    _, drifted_live = drifted.split(0.5)
    return history, live, drifted_live


def _drifted_single_daemon(drift_pair, fault_plan, **config_overrides):
    """A single-mode daemon one step away from attempting a rebuild."""
    history, live, drifted_live = drift_pair
    layout = build_offline_layout(history, _build_config())
    manager = LayoutManager(layout, EngineConfig(tier_mode="lru"))
    daemon = RefreshDaemon(
        manager,
        _daemon_config(**config_overrides),
        build_config=_build_config(),
        fault_plan=fault_plan,
    )
    daemon.observe_many(live.queries[:200])
    assert daemon.step()["action"] == "healthy"  # baseline on live traffic
    daemon.observe_many(drifted_live.queries)
    return manager, daemon


class TestRefreshFaultPlan:
    def test_draws_are_deterministic(self):
        a = RefreshFaultPlan(seed=3, rebuild_failure_rate=0.5,
                             corrupt_artifact_rate=0.5,
                             swap_failure_rate=0.5)
        b = RefreshFaultPlan(seed=3, rebuild_failure_rate=0.5,
                             corrupt_artifact_rate=0.5,
                             swap_failure_rate=0.5)
        draws_a = [
            (a.draw_rebuild_failure(s, t), a.draw_corrupt_artifact(s, t),
             a.draw_swap_failure(s, t))
            for s in (-1, 0, 1) for t in range(16)
        ]
        draws_b = [
            (b.draw_rebuild_failure(s, t), b.draw_corrupt_artifact(s, t),
             b.draw_swap_failure(s, t))
            for s in (-1, 0, 1) for t in range(16)
        ]
        assert draws_a == draws_b
        assert any(any(row) for row in draws_a)
        assert not all(all(row) for row in draws_a)

    def test_zero_rates_never_fire(self):
        plan = RefreshFaultPlan(seed=1)
        assert not plan.any_faults()
        assert not any(
            plan.draw_rebuild_failure(0, t)
            or plan.draw_corrupt_artifact(0, t)
            or plan.draw_swap_failure(0, t)
            for t in range(64)
        )

    @pytest.mark.parametrize(
        "field",
        ["rebuild_failure_rate", "corrupt_artifact_rate",
         "swap_failure_rate"],
    )
    def test_rates_validated(self, field):
        with pytest.raises(ConfigError):
            RefreshFaultPlan(**{field: 1.5})


class TestStagingValidation:
    def test_corrupt_artifact_never_loads(self, criteo_small, tmp_path):
        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        with pytest.raises(RefreshError) as excinfo:
            stage_layout(layout, str(tmp_path), "torn", corrupt=True)
        assert excinfo.value.stage == "stage"

    def test_clean_artifact_loads(self, criteo_small, tmp_path):
        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        staged = stage_layout(layout, str(tmp_path), "ok")
        assert staged.num_keys == layout.num_keys


class TestSingleModeFaults:
    def test_swap_failure_rolls_back_every_attempt(self, drift_pair):
        _, live, _ = drift_pair
        manager, daemon = _drifted_single_daemon(
            drift_pair, RefreshFaultPlan(seed=0, swap_failure_rate=1.0)
        )
        out = daemon.step()
        assert out["action"] == "repair-failed"
        status = daemon.status()
        # Every attempt installed a candidate and rolled it back.
        assert status["rollbacks"] == daemon.config.max_retries
        assert status["swaps"] == 0
        assert manager.active_version == 0
        assert not manager.engine.closed
        # Serving is unaffected by the failed repair.
        for query in list(live)[:40]:
            assert manager.serve_query(query).missing_keys == 0

    def test_corrupt_artifacts_never_reach_the_engine(self, drift_pair):
        _, live, _ = drift_pair
        manager, daemon = _drifted_single_daemon(
            drift_pair,
            RefreshFaultPlan(seed=0, corrupt_artifact_rate=1.0),
        )
        out = daemon.step()
        assert out["action"] == "repair-failed"
        status = daemon.status()
        assert status["rebuild_failures"] == daemon.config.max_retries
        assert status["swaps"] == 0
        # No corrupt candidate was even registered, let alone activated.
        assert [r.label for r in manager.versions()] == ["initial"]
        assert manager.active_version == 0

    def test_transient_rebuild_failures_are_retried(self, drift_pair):
        # Seed chosen so the first rebuild attempt dies and a retry
        # lands (the plan is deterministic, so this is stable).
        plan = RefreshFaultPlan(seed=3, rebuild_failure_rate=0.5)
        assert plan.draw_rebuild_failure(0, 0)
        assert not plan.draw_rebuild_failure(0, 1)
        manager, daemon = _drifted_single_daemon(
            drift_pair, plan, max_retries=3
        )
        out = daemon.step()
        assert out["action"] == "swap"
        status = daemon.status()
        assert status["rebuild_failures"] == 1
        assert status["swaps"] == 1
        assert status["state"] == STATE_WATCHING
        assert manager.active_version == 1

    def test_watchdog_degrades_but_serving_survives(self, drift_pair):
        _, live, _ = drift_pair
        manager, daemon = _drifted_single_daemon(
            drift_pair,
            RefreshFaultPlan(seed=0, rebuild_failure_rate=1.0),
            max_retries=1,
            max_failures=2,
        )
        assert daemon.step()["action"] == "repair-failed"
        assert not daemon.degraded
        assert daemon.step()["action"] == "repair-failed"
        assert daemon.degraded
        assert daemon.state == STATE_DEGRADED
        # Degraded means the healer stands down, not the service.
        assert daemon.step()["action"] == "degraded"
        assert daemon.status()["abandoned_repairs"] == 2
        for query in list(live)[:40]:
            assert manager.serve_query(query).missing_keys == 0


class TestClusterModeFaults:
    @staticmethod
    def _drifted_cluster_daemon(drift_pair, fault_plan, **config_overrides):
        history, live, drifted_live = drift_pair
        config = _build_config(num_shards=2)
        sharded = build_sharded_layout(history, config)
        engine = ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))
        overrides = dict(full_replace_fraction=1.0)
        overrides.update(config_overrides)
        daemon = RefreshDaemon(
            engine,
            _daemon_config(**overrides),
            build_config=config,
            fault_plan=fault_plan,
        )
        daemon.observe_many(live.queries[:200])
        daemon.step()  # baseline every shard watcher
        daemon.observe_many(drifted_live.queries)
        return engine, daemon

    def test_mid_roll_failure_restores_originals(self, drift_pair):
        _, live, _ = drift_pair
        engine, daemon = self._drifted_cluster_daemon(
            drift_pair,
            RefreshFaultPlan(seed=0, swap_failure_rate=1.0),
            full_replace_fraction=0.5,  # force the rolling multi-swap
        )
        originals = list(engine.engines)
        baseline = [
            engine.serve_query(q).pages_read for q in list(live)[:30]
        ]
        daemon.step()
        status = daemon.status()
        assert status["rollbacks"] >= 1
        assert status["swaps"] == 0
        # The exact original engines are back — not rebuilt lookalikes.
        assert [e is o for e, o in zip(engine.engines, originals)] == [
            True, True,
        ]
        assert engine.swap_counts == [0, 0]
        assert engine.swap_rollbacks >= 1
        assert all(not e.closed for e in engine.engines)
        # Bit-for-bit serving parity with the pre-chaos cluster.
        after = [
            engine.serve_query(q).pages_read for q in list(live)[:30]
        ]
        assert after == baseline

    def test_no_partially_swapped_state_ever_serves(self, drift_pair):
        """Every rollback event covers all shards of its failed roll."""
        engine, daemon = self._drifted_cluster_daemon(
            drift_pair,
            RefreshFaultPlan(seed=0, swap_failure_rate=1.0),
            full_replace_fraction=0.5,
        )
        daemon.step()
        rollbacks = [e for e in engine.swap_events if e.get("rolled_back")]
        assert rollbacks
        assert all(e["shards"] == [0, 1] for e in rollbacks)
        commits = [e for e in engine.swap_events if not e.get("rolled_back")]
        assert commits == []


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_matrix_never_drops_or_corrupts(drift_pair, seed):
    """Mixed fault rates, several repair rounds: full availability.

    Whatever the injected schedule does — rebuilds dying, artifacts
    tearing, swaps failing mid-roll — every live query keeps coming back
    complete and the cluster never exposes a closed or partially swapped
    engine.
    """
    history, live, drifted_live = drift_pair
    config = _build_config(num_shards=2)
    sharded = build_sharded_layout(history, config)
    engine = ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))
    daemon = RefreshDaemon(
        engine,
        _daemon_config(max_retries=2, max_failures=50),
        build_config=config,
        fault_plan=RefreshFaultPlan(
            seed=seed,
            rebuild_failure_rate=0.3,
            corrupt_artifact_rate=0.3,
            swap_failure_rate=0.3,
        ),
    )
    daemon.observe_many(live.queries[:200])
    daemon.step()
    daemon.observe_many(drifted_live.queries)
    for _ in range(3):
        daemon.step()
        assert all(not e.closed for e in engine.engines)
        for query in list(live)[:25]:
            assert engine.serve_query(query).missing_keys == 0
        for query in list(drifted_live)[:25]:
            assert engine.serve_query(query).missing_keys == 0
    status = daemon.status()
    assert status["steps"] >= 4
    # Swaps that committed and swaps that rolled back must reconcile
    # with the cluster's own audit trail.
    assert sum(engine.swap_counts) >= status["swaps"]
    assert engine.swap_rollbacks == status["rollbacks"]
