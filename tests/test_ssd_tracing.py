"""Tests for repro.ssd.tracing: the transparent I/O trace wrapper."""

import pytest

from repro import P5800X, Query, SimulatedSsd, StorageError
from repro.ssd import TracingDevice
from repro.ssd.tracing import IoRecord


@pytest.fixture
def traced():
    return TracingDevice(SimulatedSsd(P5800X))


class TestPassThrough:
    def test_submit_and_poll(self, traced):
        completion = traced.submit_read(3, 0.0)
        assert completion.page_id == 3
        assert traced.inflight == 1
        done = traced.poll(completion.completed_at_us)
        assert [c.page_id for c in done] == [3]
        assert traced.inflight == 0

    def test_stats_delegate(self, traced):
        traced.submit_read(0, 0.0)
        assert traced.stats.reads == 1
        traced.reset_stats()
        assert traced.stats.reads == 0

    def test_drain_and_next_completion(self, traced):
        assert traced.next_completion_time() is None
        c = traced.submit_read(1, 0.0)
        assert traced.next_completion_time() == pytest.approx(
            c.completed_at_us
        )
        assert traced.drain() == pytest.approx(c.completed_at_us)

    def test_engine_integration(self, shp_layout_small):
        from repro import EngineConfig, ServingEngine

        engine = ServingEngine(
            shp_layout_small, EngineConfig(cache_ratio=0.0)
        )
        engine.device = TracingDevice(engine.device)
        engine.serve_query(Query((0, 1, 2)))
        assert len(engine.device.records) >= 1


class TestRecording:
    def test_records_capture_timing(self, traced):
        traced.submit_read(7, 100.0)
        record = traced.records[0]
        assert record.page_id == 7
        assert record.submitted_at_us == 100.0
        assert record.latency_us >= P5800X.read_latency_us

    def test_max_records_cap(self):
        traced = TracingDevice(SimulatedSsd(P5800X), max_records=2)
        for page in range(5):
            traced.submit_read(page, float(page))
        assert len(traced.records) == 2
        assert traced.dropped == 3

    def test_rejects_bad_cap(self):
        with pytest.raises(StorageError):
            TracingDevice(SimulatedSsd(P5800X), max_records=0)


class TestAnalysis:
    def fill(self, traced, pattern):
        t = 0.0
        for page in pattern:
            traced.submit_read(page, t)
            t += 1.0

    def test_page_access_counts(self, traced):
        self.fill(traced, [0, 0, 0, 1, 2])
        counts = traced.page_access_counts()
        assert counts[0] == 3
        assert counts[2] == 1

    def test_hot_page_share(self, traced):
        self.fill(traced, [0] * 8 + [1, 2])
        # Hottest 34% of 3 touched pages = 1 page = 8/10 reads.
        assert traced.hot_page_share(0.34) == pytest.approx(0.8)

    def test_hot_page_share_empty(self, traced):
        assert traced.hot_page_share(0.5) == 0.0

    def test_hot_page_share_rejects_bad_fraction(self, traced):
        with pytest.raises(StorageError):
            traced.hot_page_share(0.0)

    def test_latency_percentiles(self, traced):
        self.fill(traced, range(4))
        pct = traced.latency_percentiles((50.0,))
        assert pct[50.0] >= P5800X.read_latency_us

    def test_latency_percentiles_empty(self, traced):
        assert traced.latency_percentiles((99.0,)) == {99.0: 0.0}

    def test_queue_depth_timeline(self, traced):
        # Submit 4 reads at once: the first bucket must see depth 4.
        for page in range(4):
            traced.submit_read(page, 0.0)
        timeline = traced.queue_depth_timeline(bucket_us=100.0)
        assert timeline[0][1] == 4

    def test_queue_depth_timeline_empty(self, traced):
        assert traced.queue_depth_timeline() == []

    def test_queue_depth_rejects_bad_bucket(self, traced):
        traced.submit_read(0, 0.0)
        with pytest.raises(StorageError):
            traced.queue_depth_timeline(bucket_us=0.0)

    def test_io_record_latency(self):
        record = IoRecord(page_id=1, submitted_at_us=2.0, completed_at_us=9.0)
        assert record.latency_us == pytest.approx(7.0)
