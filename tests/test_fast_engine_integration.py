"""Fast selection path wired through engines, cluster, and offline builds.

Because fast selectors produce bit-identical outcomes, every serving
report must be *exactly* equal between the fast and reference paths —
not approximately.  Likewise the parallel offline build and the scatter
pool must reproduce the serial artifacts verbatim.
"""

import pytest

from repro import (
    EngineConfig,
    MaxEmbedConfig,
    Query,
    QueryTrace,
    build_sharded_layout,
)
from repro.cluster import ClusterEngine
from repro.core import MaxEmbedStore, build_offline_layout
from repro.serving import (
    FastGreedySelector,
    FastOnePassSelector,
    GreedySetCoverSelector,
    OnePassSelector,
    ServingEngine,
)


@pytest.fixture
def trace() -> QueryTrace:
    queries = (
        [Query((0, 1, 2, 3))] * 6
        + [Query((4, 5, 6, 7))] * 4
        + [Query((0, 1, 8, 9))] * 3
        + [Query((6, 7, 10, 11))] * 2
        + [Query((12, 13, 14, 15))] * 2
        + [Query((3,))]
    )
    return QueryTrace(16, queries)


@pytest.fixture
def layout(trace):
    return build_offline_layout(
        trace, MaxEmbedConfig(replication_ratio=0.4)
    )


def report_fingerprint(report):
    return (
        report.num_queries,
        report.total_pages_read,
        report.throughput_qps(),
        report.mean_latency_us(),
        report.percentile_latency_us(99),
        report.effective_bandwidth_fraction(),
        report.cache_hit_rate(),
    )


class TestEngineFastPath:
    def test_fast_is_default(self, layout):
        engine = ServingEngine(layout)
        assert isinstance(engine.selector, FastOnePassSelector)

    def test_reference_path_forced_by_flag(self, layout):
        engine = ServingEngine(layout, EngineConfig(fast_selection=False))
        assert isinstance(engine.selector, OnePassSelector)

    @pytest.mark.parametrize("selector", ["onepass", "greedy"])
    def test_fast_and_reference_reports_identical(
        self, layout, trace, selector
    ):
        reports = []
        for fast in (True, False):
            engine = ServingEngine(
                layout,
                EngineConfig(selector=selector, fast_selection=fast),
            )
            reports.append(engine.serve_trace(trace))
        assert report_fingerprint(reports[0]) == report_fingerprint(
            reports[1]
        )

    def test_greedy_fast_class(self, layout):
        engine = ServingEngine(layout, EngineConfig(selector="greedy"))
        assert isinstance(engine.selector, FastGreedySelector)

    def test_store_passes_flag_through(self, layout):
        store = MaxEmbedStore(layout, MaxEmbedConfig(fast_selection=False))
        assert isinstance(store.engine.selector, OnePassSelector)
        store = MaxEmbedStore(layout, MaxEmbedConfig())
        assert isinstance(store.engine.selector, FastOnePassSelector)

    def test_page_grain_admission_parity(self, layout, trace):
        reports = []
        for fast in (True, False):
            engine = ServingEngine(
                layout,
                EngineConfig(fast_selection=fast, page_grain_admission=True),
            )
            reports.append(engine.serve_trace(trace))
        assert report_fingerprint(reports[0]) == report_fingerprint(
            reports[1]
        )


class TestParallelShardBuilds:
    def test_parallel_build_equals_serial(self, trace):
        config = MaxEmbedConfig(num_shards=3, replication_ratio=0.2)
        serial = build_sharded_layout(trace, config, workers=1)
        parallel = build_sharded_layout(trace, config, workers=3)
        assert serial.plan.assignment == parallel.plan.assignment
        for a, b in zip(serial.layouts, parallel.layouts):
            assert a.pages() == b.pages()
            assert a.num_base_pages == b.num_base_pages

    def test_config_build_workers_used(self, trace):
        config = MaxEmbedConfig(
            num_shards=2, replication_ratio=0.2, build_workers=2
        )
        sharded = build_sharded_layout(trace, config)
        reference = build_sharded_layout(
            trace,
            MaxEmbedConfig(num_shards=2, replication_ratio=0.2),
            workers=1,
        )
        for a, b in zip(sharded.layouts, reference.layouts):
            assert a.pages() == b.pages()

    def test_build_workers_validation(self):
        from repro import ConfigError

        with pytest.raises(ConfigError):
            MaxEmbedConfig(build_workers=-1)


class TestClusterScatterPool:
    def cluster_report(self, trace, scatter_workers, fast=True):
        config = MaxEmbedConfig(num_shards=2, replication_ratio=0.2)
        sharded = build_sharded_layout(trace, config, workers=1)
        engine = ClusterEngine(
            sharded,
            EngineConfig(
                fast_selection=fast, scatter_workers=scatter_workers
            ),
        )
        try:
            return engine.serve_trace(trace)
        finally:
            engine.close()

    def test_pool_matches_serial(self, trace):
        pooled = self.cluster_report(trace, scatter_workers=4)
        serial = self.cluster_report(trace, scatter_workers=0)
        assert report_fingerprint(pooled.report) == report_fingerprint(
            serial.report
        )
        assert pooled.shard_pages_read == serial.shard_pages_read
        assert pooled.shard_queries == serial.shard_queries

    def test_fast_and_reference_cluster_parity(self, trace):
        fast = self.cluster_report(trace, scatter_workers=0, fast=True)
        ref = self.cluster_report(trace, scatter_workers=0, fast=False)
        assert report_fingerprint(fast.report) == report_fingerprint(
            ref.report
        )

    def test_default_pool_when_sharded(self, trace):
        config = MaxEmbedConfig(num_shards=2, replication_ratio=0.2)
        sharded = build_sharded_layout(trace, config, workers=1)
        engine = ClusterEngine(sharded)
        assert engine._pool is not None
        engine.close()
        assert engine._pool is None
        engine.close()  # idempotent

    def test_scatter_workers_validation(self):
        from repro import ServingError

        with pytest.raises(ServingError):
            EngineConfig(scatter_workers=-1)
