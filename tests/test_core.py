"""Tests for repro.core: config, offline build, and the MaxEmbedStore facade."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    EmbeddingSpec,
    MaxEmbedConfig,
    Query,
    ServingError,
    ShpConfig,
)
from repro.core import MaxEmbedStore, build_offline_layout


class TestMaxEmbedConfig:
    def test_defaults_match_paper(self):
        config = MaxEmbedConfig()
        assert config.replication_ratio == 0.10
        assert config.cache_ratio == 0.10
        assert config.strategy == "maxembed"
        assert config.selector == "onepass"
        assert config.executor == "pipelined"
        assert config.page_capacity == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strategy": "clone-everything"},
            {"partitioner": "metis"},
            {"replication_ratio": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            MaxEmbedConfig(**kwargs)

    def test_page_capacity_follows_spec(self):
        config = MaxEmbedConfig(spec=EmbeddingSpec(dim=128))
        assert config.page_capacity == 8


class TestBuildOfflineLayout:
    def quick(self, **overrides):
        base = dict(shp=ShpConfig(max_iterations=4, seed=0), seed=0)
        base.update(overrides)
        return MaxEmbedConfig(**base)

    def test_none_strategy_has_no_replicas(self, criteo_small):
        history, _ = criteo_small
        layout = build_offline_layout(history, self.quick(strategy="none"))
        assert layout.num_replica_pages == 0

    def test_zero_ratio_short_circuits(self, criteo_small):
        history, _ = criteo_small
        layout = build_offline_layout(
            history, self.quick(replication_ratio=0.0)
        )
        assert layout.num_replica_pages == 0

    def test_maxembed_strategy_appends_replicas(self, criteo_small):
        history, _ = criteo_small
        layout = build_offline_layout(
            history, self.quick(replication_ratio=0.4)
        )
        assert layout.num_replica_pages > 0
        assert layout.space_overhead() <= 0.45

    @pytest.mark.parametrize("strategy", ["rpp", "fpr"])
    def test_strawman_strategies(self, criteo_small, strategy):
        history, _ = criteo_small
        layout = build_offline_layout(
            history, self.quick(strategy=strategy, replication_ratio=0.2)
        )
        assert layout.num_keys == history.num_keys

    @pytest.mark.parametrize("partitioner", ["shp", "random", "vanilla"])
    def test_partitioner_choices(self, criteo_small, partitioner):
        history, _ = criteo_small
        layout = build_offline_layout(
            history,
            self.quick(strategy="none", partitioner=partitioner),
        )
        assert layout.num_keys == history.num_keys


class TestMaxEmbedStore:
    def test_build_and_serve(self, criteo_small):
        history, live = criteo_small
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
        )
        report = store.serve_trace(live)
        assert report.num_queries == len(live)
        assert report.throughput_qps() > 0

    def test_serve_single_query(self, criteo_small):
        history, live = criteo_small
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
        )
        result = store.serve(list(live)[0])
        assert result.requested_keys > 0

    def test_storage_overhead_reflects_ratio(self, criteo_small):
        history, _ = criteo_small
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(
                replication_ratio=0.4,
                shp=ShpConfig(max_iterations=4, seed=0),
            ),
        )
        assert 0.0 < store.storage_overhead() <= 0.45

    def test_memory_overhead_positive(self, criteo_small):
        history, _ = criteo_small
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
        )
        assert store.memory_overhead_entries() > history.num_keys

    def test_lookup_requires_table(self, criteo_small):
        history, live = criteo_small
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
        )
        with pytest.raises(ServingError):
            store.lookup(list(live)[0])

    def test_lookup_returns_exact_vectors(self, criteo_small):
        history, live = criteo_small
        config = MaxEmbedConfig(
            replication_ratio=0.2, shp=ShpConfig(max_iterations=4, seed=0)
        )
        rng = np.random.default_rng(0)
        table = rng.normal(size=(history.num_keys, 64)).astype(np.float32)
        store = MaxEmbedStore.build(history, config, table=table)
        for query in list(live)[:20]:
            vectors = store.lookup(query)
            assert set(vectors) == set(query.unique_keys())
            for key, vec in vectors.items():
                assert np.allclose(vec, table[key])

    def test_lookup_serves_cache_hits(self, criteo_small):
        history, live = criteo_small
        config = MaxEmbedConfig(
            cache_ratio=1.0, shp=ShpConfig(max_iterations=4, seed=0)
        )
        table = np.ones((history.num_keys, 64), dtype=np.float32)
        store = MaxEmbedStore.build(history, config, table=table)
        query = list(live)[0]
        store.lookup(query)
        before = store.engine.cache.stats.hits
        store.lookup(query)
        assert store.engine.cache.stats.hits > before

    def test_attach_table_validates_shape(self, criteo_small):
        history, _ = criteo_small
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
        )
        with pytest.raises(ConfigError):
            store.attach_table(np.zeros((3, 64), dtype=np.float32))

    def test_wrap_existing_layout(self, shp_layout_small):
        store = MaxEmbedStore(shp_layout_small)
        assert store.layout is shp_layout_small
        result = store.serve(Query((0, 1, 2)))
        assert result.requested_keys == 3
