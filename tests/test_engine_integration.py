"""Engine integration: device variants, tracing, page-grain admission."""

import pytest

from repro import (
    EngineConfig,
    P5800X,
    PageLayout,
    Query,
    QueryTrace,
    ServingEngine,
)
from repro.ssd import Raid0Array, TracingDevice


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=12,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (0, 4, 8)],
        num_base_pages=3,
    )


class TestDeviceVariants:
    def test_raid_engine_report_matches_single_on_page_counts(self, layout):
        trace = QueryTrace(12, [Query((0, 4, 8)), Query((1, 5, 9))] * 10)
        single = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0)
        ).serve_trace(trace)
        raid = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0, raid_members=2)
        ).serve_trace(trace)
        # Page counts are placement decisions, independent of the device.
        assert raid.total_pages_read == single.total_pages_read
        # With parallel members, the raid makespan never exceeds single's.
        assert raid.makespan_us <= single.makespan_us + 1e-6

    def test_traced_engine_records_every_read(self, layout):
        engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
        engine.device = TracingDevice(engine.device)
        trace = QueryTrace(12, [Query((0, 5)), Query((2, 6, 10))])
        report = engine.serve_trace(trace)
        assert len(engine.device.records) == report.total_pages_read

    def test_traced_raid(self, layout):
        engine = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0, raid_members=2)
        )
        engine.device = TracingDevice(engine.device)
        engine.serve_query(Query((0, 4, 8)))
        # RAID-0 advertises the aggregate queue across both members.
        assert engine.device.queue_depth == 2 * P5800X.queue_depth
        assert len(engine.device.records) >= 1


class TestPageGrainAdmission:
    def test_page_grain_admits_co_residents(self, layout):
        engine = ServingEngine(
            layout,
            EngineConfig(cache_ratio=1.0, page_grain_admission=True),
        )
        engine.serve_query(Query((0,)))  # reads page 0 holding 0..3
        result = engine.serve_query(Query((1, 2, 3)), start_us=100.0)
        assert result.cache_hits == 3
        assert result.pages_read == 0

    def test_key_grain_admits_only_requested(self, layout):
        engine = ServingEngine(
            layout,
            EngineConfig(cache_ratio=1.0, page_grain_admission=False),
        )
        engine.serve_query(Query((0,)))
        result = engine.serve_query(Query((1,)), start_us=100.0)
        assert result.cache_hits == 0
        assert result.pages_read == 1


class TestReportInternals:
    def test_cpu_fraction_bounded(self, layout):
        engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
        trace = QueryTrace(12, [Query((0, 4, 8))] * 20)
        report = engine.serve_trace(trace)
        assert 0.0 < report.cpu_fraction() < 1.0

    def test_keys_per_second_scales_with_query_size(self, layout):
        engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
        trace = QueryTrace(12, [Query((0, 1, 2, 3))] * 10)
        report = engine.serve_trace(trace)
        assert report.keys_per_second() == pytest.approx(
            4 * report.throughput_qps(), rel=1e-6
        )

    def test_device_stats_track_engine_reads(self, layout):
        engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
        trace = QueryTrace(12, [Query((0, 5, 10))] * 5)
        report = engine.serve_trace(trace)
        assert engine.device.stats.reads == report.total_pages_read
        assert engine.device.stats.bytes_read == report.total_bytes_read()
