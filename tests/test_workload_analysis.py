"""Tests for repro.workloads.analysis."""

import numpy as np
import pytest

from repro import Query, QueryTrace, WorkloadError, make_trace
from repro.workloads.analysis import (
    access_counts,
    coappearance_breadth,
    cooccurrence_overlap,
    gini_coefficient,
    popularity_overlap,
    summarize,
    top_share,
    working_set_curve,
)


@pytest.fixture
def skewed_trace():
    """Key 0 is in every query; keys 1..9 appear once each."""
    queries = [Query((0, k)) for k in range(1, 10)]
    return QueryTrace(10, queries)


@pytest.fixture
def uniform_trace():
    return QueryTrace(10, [Query((k,)) for k in range(10)])


class TestCounts:
    def test_access_counts(self, skewed_trace):
        counts = access_counts(skewed_trace)
        assert counts[0] == 9
        assert counts[5] == 1
        assert counts.sum() == 18

    def test_duplicates_counted_raw(self):
        trace = QueryTrace(4, [Query((1, 1, 2))])
        counts = access_counts(trace)
        assert counts[1] == 2


class TestSkewMetrics:
    def test_top_share_skewed(self, skewed_trace):
        # Hottest 10% (1 key) = key 0 with 9 of 18 accesses.
        assert top_share(skewed_trace, 0.1) == pytest.approx(0.5)

    def test_top_share_uniform(self, uniform_trace):
        assert top_share(uniform_trace, 0.5) == pytest.approx(0.5)

    def test_top_share_rejects_bad_fraction(self, uniform_trace):
        with pytest.raises(WorkloadError):
            top_share(uniform_trace, 0.0)

    def test_gini_uniform_is_zero(self, uniform_trace):
        assert gini_coefficient(uniform_trace) == pytest.approx(0.0, abs=1e-9)

    def test_gini_skewed_positive(self, skewed_trace):
        assert gini_coefficient(skewed_trace) > 0.3

    def test_gini_empty(self):
        assert gini_coefficient(QueryTrace(4)) == 0.0


class TestWorkingSet:
    def test_curve_monotone_and_complete(self, skewed_trace):
        curve = working_set_curve(skewed_trace, points=3)
        sizes = [s for _, s in curve]
        assert sizes == sorted(sizes)
        assert curve[-1] == (9, 10)

    def test_curve_empty_trace(self):
        assert working_set_curve(QueryTrace(4)) == []

    def test_curve_rejects_bad_points(self, skewed_trace):
        with pytest.raises(WorkloadError):
            working_set_curve(skewed_trace, points=0)


class TestBreadth:
    def test_breadth_report_fields(self):
        trace, _ = make_trace("criteo", scale="small", seed=1)
        report = coappearance_breadth(trace, page_capacity=16)
        assert report.page_capacity == 16
        assert report.hot_mean_breadth >= report.mean_breadth
        assert 0.0 <= report.fraction_exceeding_capacity <= 1.0

    def test_motivation_holds_on_presets(self):
        # The paper's premise: hot keys co-appear beyond a page.
        trace, _ = make_trace("criteo", scale="small", seed=1)
        report = coappearance_breadth(trace, page_capacity=16)
        assert report.replication_headroom()

    def test_rejects_bad_capacity(self, skewed_trace):
        with pytest.raises(WorkloadError):
            coappearance_breadth(skewed_trace, page_capacity=0)


class TestDriftMetrics:
    def test_identical_windows_overlap_fully(self):
        trace, _ = make_trace("criteo", scale="small", seed=1)
        assert popularity_overlap(trace, trace) == pytest.approx(1.0)
        assert cooccurrence_overlap(trace, trace) == pytest.approx(1.0)

    def test_different_seeds_drift(self):
        a, _ = make_trace("criteo", scale="small", seed=1)
        b, _ = make_trace("criteo", scale="small", seed=99)
        assert popularity_overlap(a, b) < 1.0
        assert cooccurrence_overlap(a, b) < 0.8

    def test_same_workload_windows_are_stable(self):
        trace, _ = make_trace("criteo", scale="small", seed=1)
        first, second = trace.split(0.5)
        # Two windows of the same stationary workload stay correlated.
        assert popularity_overlap(first, second) > popularity_overlap(
            first, make_trace("criteo", scale="small", seed=99)[0]
        )

    def test_mismatched_key_spaces_rejected(self):
        a = QueryTrace(4, [Query((0,))])
        b = QueryTrace(5, [Query((0,))])
        with pytest.raises(WorkloadError):
            popularity_overlap(a, b)
        with pytest.raises(WorkloadError):
            cooccurrence_overlap(a, b)


class TestSummary:
    def test_summarize_keys(self):
        trace, _ = make_trace("amazon_m2", scale="small", seed=2)
        summary = summarize(trace)
        assert summary["num_keys"] == trace.num_keys
        assert summary["num_queries"] == len(trace)
        assert 0 < summary["gini"] < 1
        assert summary["hot_coappearance_breadth"] > 0
