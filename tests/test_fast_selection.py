"""Differential tests: fast selectors vs the reference oracle.

The fast selectors' contract is *bit-identical outcomes*: same pages in
the same order, same covered tuples, same candidate counts, same
sorted-keys charge.  These tests enforce the contract over hand-built
layouts, hypothesis-generated random layouts (all shrink limits, query
shapes including single-key, fully-replicated, duplicate-laden, and
wider-than-52-key queries), and both the per-query and batched entry
points.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import PageLayout, ServingError
from repro.placement import build_indexes
from repro.serving import (
    FastGreedySelector,
    FastOnePassSelector,
    GreedySetCoverSelector,
    OnePassSelector,
)
from repro.serving.fast_selection import MASK_KEY_LIMIT


def assert_same_outcome(fast, ref):
    assert fast.pages == ref.pages
    assert fast.candidate_counts == ref.candidate_counts
    assert fast.covered_counts == ref.covered_counts
    assert fast.num_steps == ref.num_steps
    assert fast.total_candidates == ref.total_candidates
    assert fast.sorted_keys == ref.sorted_keys
    assert fast.steps == ref.steps
    assert fast.covered_keys() == ref.covered_keys()


@pytest.fixture
def layout():
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (0, 4, 5),
            (1, 6),
        ],
        num_base_pages=2,
    )


def selector_pairs(layout, limit=None):
    forward, invert = build_indexes(layout, limit=limit)
    yield (
        FastOnePassSelector(forward, invert),
        OnePassSelector(forward, invert),
    )
    yield (
        FastGreedySelector(forward, invert),
        GreedySetCoverSelector(forward, invert),
    )


QUERIES = [
    [0],
    [3],
    [0, 1, 4, 6],
    [0, 4, 5],
    [5, 5, 4],
    [3, 3, 3],
    [0, 1, 2, 3, 4, 5, 6, 7],
    [7, 6, 5, 4, 3, 2, 1, 0],
]


class TestFixtureParity:
    @pytest.mark.parametrize("limit", [None, 1, 2])
    def test_all_queries_match(self, layout, limit):
        for fast, ref in selector_pairs(layout, limit):
            for keys in QUERIES:
                assert_same_outcome(fast.select(keys), ref.select(keys))

    def test_select_many_matches_reference_loop(self, layout):
        for fast, ref in selector_pairs(layout):
            fast_outcomes = fast.select_many(QUERIES)
            ref_outcomes = ref.select_many(QUERIES)
            for got, want in zip(fast_outcomes, ref_outcomes):
                assert_same_outcome(got, want)

    def test_rejects_unknown_key(self, layout):
        for fast, _ in selector_pairs(layout):
            with pytest.raises(ServingError):
                fast.select([99])
            with pytest.raises(ServingError):
                fast.select([-1])

    def test_select_many_rejects_unknown_key(self, layout):
        forward, invert = build_indexes(layout)
        fast = FastOnePassSelector(forward, invert)
        with pytest.raises(ServingError):
            fast.select_many([[0, 1], [99]])

    def test_stamp_state_survives_many_queries(self, layout):
        # Epoch reuse: no cross-query contamination over repeated selects.
        for fast, ref in selector_pairs(layout):
            for _ in range(3):
                for keys in QUERIES:
                    assert_same_outcome(fast.select(keys), ref.select(keys))


class TestFullyReplicated:
    def test_every_key_on_every_page(self):
        layout = PageLayout(
            num_keys=3,
            capacity=4,
            pages=[(0, 1, 2), (2, 1, 0), (1, 0, 2)],
            num_base_pages=1,
        )
        for limit in (None, 1, 2):
            for fast, ref in selector_pairs(layout, limit):
                for keys in ([0], [0, 1, 2], [2, 0], [1, 1, 1]):
                    assert_same_outcome(fast.select(keys), ref.select(keys))


class TestWideQueries:
    """Queries wider than the packed-mask limit use the stamp-array path."""

    def make_layout(self, n=60, capacity=8):
        pages = [
            tuple(range(start, min(start + capacity, n)))
            for start in range(0, n, capacity)
        ]
        base = len(pages)
        pages.append(tuple(range(0, capacity)))  # one replica page
        return PageLayout(n, capacity, pages, num_base_pages=base)

    def test_wide_query_matches(self):
        layout = self.make_layout()
        wide = list(range(60))
        assert len(wide) > MASK_KEY_LIMIT
        for fast, ref in selector_pairs(layout):
            assert_same_outcome(fast.select(wide), ref.select(wide))

    def test_select_many_mixed_widths(self):
        layout = self.make_layout()
        queries = [list(range(60)), [0, 1], list(range(55)), [59]]
        forward, invert = build_indexes(layout, limit=2)
        fast = FastOnePassSelector(forward, invert)
        ref = OnePassSelector(forward, invert)
        for got, want in zip(
            fast.select_many(queries), ref.select_many(queries)
        ):
            assert_same_outcome(got, want)


class TestLazyOutcome:
    def test_flat_accessors_agree_with_steps(self, layout):
        forward, invert = build_indexes(layout)
        fast = FastOnePassSelector(forward, invert)
        (outcome,) = fast.select_many([[0, 1, 4, 6]])
        # Read flat accessors BEFORE steps to prove they don't depend on
        # materialization.
        pages = outcome.pages
        counts = outcome.candidate_counts
        covered = outcome.covered_counts
        steps = outcome.steps
        assert pages == [s.page_id for s in steps]
        assert counts == [s.candidates_examined for s in steps]
        assert covered == [len(s.covered) for s in steps]
        assert outcome.steps is steps  # memoized


# -- hypothesis: random layouts, limits, and query shapes -----------------------


@st.composite
def layouts_queries_limits(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    capacity = draw(st.sampled_from([2, 4, 8]))
    pages = [
        tuple(range(start, min(start + capacity, n)))
        for start in range(0, n, capacity)
    ]
    num_base = len(pages)
    extra = draw(st.integers(min_value=0, max_value=4))
    for _ in range(extra):
        size = draw(st.integers(min_value=1, max_value=min(capacity, n)))
        page = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        pages.append(tuple(page))
    layout = PageLayout(n, capacity, pages, num_base_pages=num_base)
    num_queries = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(num_queries):
        size = draw(st.integers(min_value=1, max_value=min(12, n)))
        queries.append(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=size,
                    max_size=size,
                    unique=draw(st.booleans()),
                )
            )
        )
    limit = draw(st.sampled_from([None, 1, 2, 5]))
    return layout, queries, limit


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=layouts_queries_limits())
def test_fast_selectors_match_reference(data):
    layout, queries, limit = data
    forward, invert = build_indexes(layout, limit=limit)
    pairs = [
        (
            FastOnePassSelector(forward, invert),
            OnePassSelector(forward, invert),
        ),
        (
            FastGreedySelector(forward, invert),
            GreedySetCoverSelector(forward, invert),
        ),
    ]
    for fast, ref in pairs:
        for keys in queries:
            assert_same_outcome(fast.select(keys), ref.select(keys))
        for got, want in zip(
            fast.select_many(queries), ref.select_many(queries)
        ):
            assert_same_outcome(got, want)
