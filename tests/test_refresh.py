"""Tests for repro.refresh: drift watch, repair ladder, hot swaps.

Covers the daemon's components in isolation (traffic window, hysteresis
watcher, CRC staging, shadow gate, config validation) and the assembled
watch→repair→swap loop on both targets — a LayoutManager and a
ClusterEngine — plus the gateway wiring (/refresh endpoints, metrics
section, pause-on-drain).
"""

import asyncio
import json

import pytest

from repro import (
    ConfigError,
    EngineConfig,
    MaxEmbedConfig,
    PageLayout,
    Query,
    QueryTrace,
    RefreshConfig,
    RefreshDaemon,
    ServingError,
    ShpConfig,
    build_offline_layout,
    build_sharded_layout,
)
from repro.cluster import ClusterEngine
from repro.core import LayoutManager
from repro.core.deploy import window_fingerprint
from repro.refresh import (
    DRIFTING,
    HEALTHY,
    STATE_DEGRADED,
    STATE_PAUSED,
    STATE_WATCHING,
    DriftWatcher,
    TrafficWindow,
    shadow_score,
    stage_layout,
)
from repro.tiering import replan_tier
from repro.workloads.drift import drifted_trace_for


def _build_config(num_shards: int = 1) -> MaxEmbedConfig:
    return MaxEmbedConfig(
        strategy="maxembed",
        replication_ratio=0.2,
        shp=ShpConfig(max_iterations=6, seed=7),
        num_shards=num_shards,
        seed=7,
    )


@pytest.fixture(scope="module")
def drift_pair(criteo_small):
    history, live = criteo_small
    drifted = drifted_trace_for("criteo", scale="small", base_seed=7,
                                drift_seed=11)
    _, drifted_live = drifted.split(0.5)
    return history, live, drifted_live


class TestRefreshConfig:
    def test_defaults_valid(self):
        config = RefreshConfig()
        assert config.clear_share >= config.trigger_share

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_size": 0},
            {"min_window": 0},
            {"min_window": 9999},
            {"interval_s": 0.0},
            {"trigger_share": 1.5},
            {"trigger_share": 0.95, "clear_share": 0.9},
            {"drop_fraction": 1.0},
            {"full_replace_fraction": 0.0},
            {"max_retries": 0},
            {"backoff_s": -1.0},
            {"shadow_margin": 0.0},
            {"max_failures": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            RefreshConfig(**kwargs)


class TestTrafficWindow:
    def test_bounded_and_ordered(self):
        window = TrafficWindow(num_keys=100, capacity=4)
        for i in range(10):
            window.observe(Query((i,)))
        assert len(window) == 4
        assert window.total_observed == 10
        snapshot = window.snapshot()
        assert isinstance(snapshot, QueryTrace)
        assert [q.keys[0] for q in snapshot.queries] == [6, 7, 8, 9]

    def test_observe_many(self):
        window = TrafficWindow(num_keys=10, capacity=8)
        window.observe_many(Query((k,)) for k in range(3))
        assert len(window) == 3

    def test_snapshot_is_a_copy(self):
        window = TrafficWindow(num_keys=10, capacity=8)
        window.observe(Query((1,)))
        snap = window.snapshot()
        window.observe(Query((2,)))
        assert len(snap.queries) == 1


class TestDriftWatcher:
    def test_share_trigger_and_hysteresis(self):
        watcher = DriftWatcher(
            trigger_share=0.9, clear_share=0.97, drop_fraction=0.5
        )
        assert not watcher.assess(0.5, share_of_best=1.0)
        assert watcher.state == HEALTHY
        assert watcher.assess(0.5, share_of_best=0.85)  # below trigger
        assert watcher.state == DRIFTING
        # Between trigger and clear: still drifting (hysteresis).
        assert watcher.assess(0.5, share_of_best=0.93)
        assert not watcher.assess(0.5, share_of_best=0.99)
        assert watcher.state == HEALTHY

    def test_bandwidth_drop_signal_without_share(self):
        watcher = DriftWatcher(
            trigger_share=0.9, clear_share=0.97, drop_fraction=0.2
        )
        assert not watcher.assess(0.50)  # establishes baseline
        assert not watcher.assess(0.45)  # -10% < drop threshold
        assert watcher.assess(0.35)  # -30% fires
        assert not watcher.assess(0.50)  # recovered, share is None

    def test_rebaseline_clears_state(self):
        watcher = DriftWatcher(0.9, 0.97, 0.2)
        watcher.assess(0.5)
        assert watcher.assess(0.1)
        watcher.rebaseline(0.1)
        assert watcher.state == HEALTHY
        assert not watcher.assess(0.1)


class TestWindowFingerprint:
    def test_stable_and_order_sensitive(self):
        a = [Query((1, 2)), Query((3,))]
        b = [Query((3,)), Query((1, 2))]
        assert window_fingerprint(a) == window_fingerprint(list(a))
        assert window_fingerprint(a) != window_fingerprint(b)

    def test_prefix_cap(self):
        a = [Query((1,)), Query((2,))]
        longer = a + [Query((3,))]
        assert window_fingerprint(a, 2) == window_fingerprint(longer, 2)
        assert window_fingerprint(a) != window_fingerprint(longer)


class TestRetention:
    def _layouts(self, count):
        base = [(0, 1, 2, 3), (4, 5, 6, 7)]
        return [
            PageLayout(8, 4, base + [(i % 8,)]) for i in range(count)
        ]

    def test_keeps_last_k_plus_active(self):
        layouts = self._layouts(10)
        manager = LayoutManager(
            PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]), retain=3
        )
        for layout in layouts:
            manager.register(layout)
        retained = [r.version for r in manager.versions()]
        # Last 3 registrations plus the active version 0.
        assert retained == [0, 8, 9, 10]
        assert manager.active_version == 0

    def test_active_survives_pruning_then_prunes_after_swap(self):
        layouts = self._layouts(6)
        manager = LayoutManager(
            PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]), retain=2
        )
        for layout in layouts:
            manager.register(layout)
        assert 0 in [r.version for r in manager.versions()]
        manager.swap(manager.versions()[-1].version)
        # The old active version is no longer protected.
        assert 0 not in [r.version for r in manager.versions()]

    def test_swapping_to_pruned_version_raises(self):
        layouts = self._layouts(6)
        manager = LayoutManager(
            PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]), retain=2
        )
        for layout in layouts:
            manager.register(layout)
        with pytest.raises(ServingError, match="unknown layout version"):
            manager.swap(1)

    def test_retain_must_be_positive(self):
        with pytest.raises(ServingError):
            LayoutManager(
                PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]), retain=0
            )

    def test_probe_skips_pruned_versions(self):
        layouts = self._layouts(6)
        manager = LayoutManager(
            PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]), retain=2
        )
        for layout in layouts:
            manager.register(layout)
        window = QueryTrace(8, [Query((0, 1)), Query((4, 5))])
        scores = manager.staleness_probe(window)
        names = set(scores) - {"active_share_of_best"}
        assert names == {"initial", "v5", "v6"}


class TestProbeCache:
    def test_same_window_probes_once(self, tiny_trace):
        layout_a = PageLayout(16, 4, [tuple(range(i, i + 4))
                                      for i in range(0, 16, 4)])
        manager = LayoutManager(layout_a)
        manager.staleness_probe(tiny_trace)
        size = manager.probe_cache_size()
        assert size == 1
        manager.staleness_probe(tiny_trace)
        assert manager.probe_cache_size() == size

    def test_cache_keyed_by_window(self, tiny_trace):
        layout_a = PageLayout(16, 4, [tuple(range(i, i + 4))
                                      for i in range(0, 16, 4)])
        manager = LayoutManager(layout_a)
        manager.staleness_probe(tiny_trace)
        other = QueryTrace(16, [Query((0, 5, 10))])
        manager.staleness_probe(other)
        assert manager.probe_cache_size() == 2

    def test_pruning_drops_cache_entries(self):
        base = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
        manager = LayoutManager(base, retain=1)
        window = QueryTrace(8, [Query((0, 1))])
        manager.staleness_probe(window)
        manager.register(PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]))
        manager.staleness_probe(window)
        # Only retained versions' entries remain.
        assert manager.probe_cache_size() == len(manager.versions())


class TestEngineClose:
    def test_close_is_idempotent_retirement(self, tiny_layouts=None):
        layout = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
        manager = LayoutManager(layout)
        engine = manager.engine
        assert not engine.closed
        manager.register(PageLayout(8, 4, [(0, 4, 1, 5), (2, 6, 3, 7)]))
        manager.swap(1)
        assert engine.closed  # displaced engine retired
        assert not manager.engine.closed  # never the active one
        engine.close()  # idempotent
        # A closed engine still completes in-flight work correctly.
        result = engine.serve_query(Query((0, 1)))
        assert result.missing_keys == 0

    def test_swap_events_audit_trail(self):
        layout = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
        manager = LayoutManager(layout)
        manager.register(layout, label="again")
        manager.swap(1, keep_cache=False)
        assert manager.swap_events[-1] == {
            "from": 0, "to": 1, "label": "again", "keep_cache": False,
        }


class TestReplanTier:
    def test_replan_carries_previous_pins(self, criteo_small):
        history, live = criteo_small
        layout = build_offline_layout(history, _build_config())
        first = replan_tier(layout, history, 0.05)
        carried = replan_tier(layout, live, 0.05, previous=first)
        fresh = replan_tier(layout, live, 0.05)
        assert carried.capacity == fresh.capacity
        overlap_carried = len(set(carried.pinned) & set(first.pinned))
        overlap_fresh = len(set(fresh.pinned) & set(first.pinned))
        # The carry bonus biases toward keeping previously pinned keys.
        assert overlap_carried >= overlap_fresh

    def test_apply_tier_plan_requires_tiered_engine(self, criteo_small):
        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(layout, EngineConfig(tier_mode="lru"))
        plan = replan_tier(layout, history, 0.05)
        with pytest.raises(ServingError):
            manager.engine.apply_tier_plan(plan)


class TestStageAndShadow:
    def test_stage_round_trips(self, criteo_small, tmp_path):
        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        staged = stage_layout(layout, str(tmp_path), "t0")
        assert staged is not layout
        assert staged.pages() == layout.pages()

    def test_shadow_score_prefers_matching_layout(self, drift_pair):
        history, _, drifted_live = drift_pair
        stale = build_offline_layout(history, _build_config())
        fresh = build_offline_layout(drifted_live, _build_config())
        spec = EngineConfig().spec
        score = shadow_score(
            fresh, stale, drifted_live, spec, max_queries=200
        )
        assert score.candidate_bw > score.active_bw
        assert score.passes
        strict = shadow_score(
            stale, fresh, drifted_live, spec, max_queries=200, margin=1.0
        )
        assert not strict.passes


def _daemon_config(**overrides):
    # window_size=256 < len(small-scale live trace), so feeding the full
    # drifted trace leaves the window holding *only* drifted traffic.
    defaults = dict(
        interval_s=None,
        window_size=256,
        min_window=64,
        probe_max_queries=200,
        backoff_s=0.0,
        drop_fraction=0.10,
    )
    defaults.update(overrides)
    return RefreshConfig(**defaults)


class TestDaemonSingle:
    def test_rejects_bad_target(self):
        with pytest.raises(ServingError):
            RefreshDaemon(object())

    def test_warming_below_min_window(self, criteo_small):
        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        daemon = RefreshDaemon(
            LayoutManager(layout), _daemon_config(), _build_config()
        )
        assert daemon.step()["action"] == "warming"

    def test_ladder_tier_then_rebuild_then_healthy(self, drift_pair):
        history, live, drifted_live = drift_pair
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(
            layout, EngineConfig(tier_mode="hybrid", tier_ratio=0.05)
        )
        daemon = RefreshDaemon(
            manager, _daemon_config(), build_config=_build_config()
        )
        daemon.observe_many(live.queries[:200])
        assert daemon.step()["action"] == "healthy"
        daemon.observe_many(drifted_live.queries)
        assert daemon.step()["action"] == "tier-replan"
        swap = daemon.step()
        assert swap["action"] == "swap"
        assert swap["candidate_bw"] > swap["active_bw"]
        assert daemon.step()["action"] == "healthy"
        status = daemon.status()
        assert status["swaps"] == 1
        assert status["tier_replans"] == 1
        assert status["state"] == STATE_WATCHING
        assert manager.active_version == 1
        assert manager.versions()[-1].label == "refresh-0"

    def test_untiered_engine_goes_straight_to_rebuild(self, drift_pair):
        history, live, drifted_live = drift_pair
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(layout, EngineConfig(tier_mode="lru"))
        daemon = RefreshDaemon(
            manager, _daemon_config(), build_config=_build_config()
        )
        daemon.observe_many(live.queries[:200])
        assert daemon.step()["action"] == "healthy"  # sets the baseline
        daemon.observe_many(drifted_live.queries)
        assert daemon.step()["action"] == "swap"

    def test_shadow_gate_rejects_non_improving_rebuild(self, drift_pair):
        history, live, drifted_live = drift_pair
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(layout, EngineConfig(tier_mode="lru"))
        # An absurd margin makes every candidate fail the shadow gate, so
        # a genuine drift detection must end in rejection, not a swap.
        daemon = RefreshDaemon(
            manager,
            _daemon_config(shadow_margin=10.0),
            build_config=_build_config(),
        )
        daemon.observe_many(live.queries[:200])
        assert daemon.step()["action"] == "healthy"
        daemon.observe_many(drifted_live.queries)
        out = daemon.step()
        assert out["action"] == "shadow-rejected"
        assert manager.active_version == 0  # nothing swapped
        assert daemon.status()["shadow_rejections"] == 1
        # Rejection rebaselines the watcher: the next step settles.
        assert daemon.step()["action"] == "healthy"

    def test_pause_blocks_repairs(self, drift_pair):
        history, live, drifted_live = drift_pair
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(layout, EngineConfig(tier_mode="lru"))
        daemon = RefreshDaemon(
            manager, _daemon_config(), build_config=_build_config()
        )
        daemon.observe_many(live.queries[:200])
        assert daemon.step()["action"] == "healthy"
        daemon.observe_many(drifted_live.queries)
        daemon.pause()
        assert daemon.state == STATE_PAUSED
        assert daemon.step()["action"] == "paused"
        assert manager.active_version == 0
        daemon.resume()
        assert daemon.step()["action"] in ("swap", "tier-replan")

    def test_thread_lifecycle(self, criteo_small):
        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        daemon = RefreshDaemon(
            LayoutManager(layout),
            _daemon_config(interval_s=30.0),
            _build_config(),
        )
        assert daemon.start()
        assert daemon.running
        assert daemon.start()  # idempotent
        daemon.stop()
        assert not daemon.running
        manual = RefreshDaemon(
            LayoutManager(layout), _daemon_config(), _build_config()
        )
        assert not manual.start()  # manual mode has no thread


class TestDaemonCluster:
    def test_shard_rebuild_and_full_replace(self, drift_pair):
        history, live, drifted_live = drift_pair
        config = _build_config(num_shards=2)
        sharded = build_sharded_layout(history, config)
        engine = ClusterEngine(sharded, EngineConfig())
        daemon = RefreshDaemon(
            engine,
            _daemon_config(tier_first=False, full_replace_fraction=1.0),
            build_config=config,
        )
        daemon.observe_many(live.queries[:200])
        assert daemon.step()["action"] == "healthy"
        daemon.observe_many(drifted_live.queries)
        out = daemon.step()
        assert out["action"] in ("repair", "full-replace")
        status = daemon.status()
        assert status["swaps"] + status["shadow_rejections"] >= 1
        if status["swaps"]:
            assert sum(engine.swap_counts) >= 1
            # Swap counters surface in the serving report.
            report = engine.serve_trace(list(live)[:40])
            assert report.as_dict()["shard_swaps"] >= 1
            assert report.as_dict()["swap_rollbacks"] == 0

    def test_full_replace_preserves_key_space(self, drift_pair):
        history, live, drifted_live = drift_pair
        config = _build_config(num_shards=2)
        sharded = build_sharded_layout(history, config)
        engine = ClusterEngine(sharded, EngineConfig())
        daemon = RefreshDaemon(
            engine,
            _daemon_config(tier_first=False, full_replace_fraction=0.5),
            build_config=config,
        )
        daemon.observe_many(live.queries[:200])
        daemon.step()  # baselines every shard watcher on live traffic
        daemon.observe_many(drifted_live.queries)
        daemon.step()
        # Whatever the ladder did, the cluster must still cover every key.
        for query in list(live)[:60]:
            assert engine.serve_query(query).missing_keys == 0


class TestGatewayIntegration:
    @staticmethod
    def _mounted_gateway(criteo_small):
        from repro.service import GatewayCore, ServiceConfig

        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(layout, EngineConfig(tier_mode="lru"))
        daemon = RefreshDaemon(
            manager, _daemon_config(), build_config=_build_config()
        )
        return GatewayCore(manager, ServiceConfig(), refresh=daemon), daemon

    def test_gateway_feeds_window_and_metrics(self, criteo_small):
        gateway, daemon = self._mounted_gateway(criteo_small)
        _, live = criteo_small

        async def scenario():
            async with gateway:
                for query in list(live)[:20]:
                    outcome = await gateway.submit(query.keys)
                    assert outcome.ok
                metrics = gateway.metrics()
                assert metrics["refresh"]["observed"] == 20
                assert metrics["refresh"]["state"] == STATE_WATCHING
            # Drain paused the daemon before shutdown.
            assert daemon.paused

        asyncio.run(scenario())

    def test_http_refresh_endpoints(self, criteo_small):
        from repro.service import HttpGateway

        gateway, daemon = self._mounted_gateway(criteo_small)
        _, live = criteo_small

        async def scenario():
            server = HttpGateway(gateway, port=0)
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.bound_port
                )

                async def request(raw: bytes) -> tuple:
                    writer.write(raw)
                    await writer.drain()
                    status_line = await reader.readline()
                    status = int(status_line.split()[1])
                    headers = {}
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b""):
                            break
                        name, _, value = line.decode().partition(":")
                        headers[name.strip().lower()] = value.strip()
                    body = await reader.readexactly(
                        int(headers.get("content-length", "0"))
                    )
                    return status, json.loads(body or b"{}")

                status, body = await request(
                    b"GET /refresh HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                assert status == 200
                assert body["state"] == STATE_WATCHING
                payload = json.dumps({"pause": True}).encode()
                status, body = await request(
                    b"POST /refresh HTTP/1.1\r\nHost: x\r\n"
                    + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                    + payload
                )
                assert status == 200 and body["state"] == STATE_PAUSED
                status, body = await request(
                    b"POST /refresh HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 2\r\n\r\n{}"
                )
                assert status == 200
                assert body["step"]["action"] == "paused"
                writer.close()
                await writer.wait_closed()

        asyncio.run(scenario())

    def test_http_refresh_404_without_daemon(self, criteo_small):
        from repro.service import GatewayCore, HttpGateway, ServiceConfig

        history, _ = criteo_small
        layout = build_offline_layout(history, _build_config())
        manager = LayoutManager(layout)
        gateway = GatewayCore(manager, ServiceConfig())

        async def scenario():
            server = HttpGateway(gateway, port=0)
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.bound_port
                )
                writer.write(b"GET /refresh HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert int(status_line.split()[1]) == 404
                writer.close()

        asyncio.run(scenario())

    def test_prometheus_renders_refresh_counters(self, criteo_small):
        from repro.service.prometheus import render_prometheus

        gateway, daemon = self._mounted_gateway(criteo_small)
        _, live = criteo_small

        async def scenario():
            async with gateway:
                await gateway.submit(live.queries[0].keys)
                text = render_prometheus(gateway.metrics())
                assert "maxembed_refresh_swaps 0" in text
                assert "maxembed_refresh_observed 1" in text

        asyncio.run(scenario())
