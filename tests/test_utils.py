"""Tests for repro.utils: validation, rng, zipf, tables."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils import (
    ZipfSampler,
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    format_series,
    format_table,
    make_rng,
    spawn_rngs,
    zipf_weights,
)
from repro.utils.tables import format_mapping


class TestValidation:
    def test_check_positive_passes_and_returns(self):
        assert check_positive(3, "x") == 3

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigError, match="x"):
            check_positive(0, "x")

    def test_check_non_negative_allows_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ConfigError):
            check_non_negative(-1, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_fraction_bounds(self, value):
        assert check_fraction(value, "f") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_check_fraction_rejects_outside(self, value):
        with pytest.raises(ConfigError):
            check_fraction(value, "f")

    def test_check_probability_message_names_parameter(self):
        with pytest.raises(ConfigError, match="p.*probability"):
            check_probability(2.0, "p")


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_make_rng_passes_through_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_make_rng_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_rngs_differ_from_root_stream(self):
        # The collision this guards against: a component seeded with the
        # same integer must not replay a spawned child's draws.
        root = make_rng(0).permutation(100).tolist()
        child = spawn_rngs(0, 1)[0].permutation(100).tolist()
        assert root != child

    def test_spawn_rngs_reproducible(self):
        a = spawn_rngs(5, 2)[1].random(3)
        b = spawn_rngs(5, 2)[1].random(3)
        assert np.array_equal(a, b)

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestZipf:
    def test_weights_sum_to_one(self):
        w = zipf_weights(100, 1.0)
        assert w.sum() == pytest.approx(1.0)

    def test_weights_monotone_decreasing(self):
        w = zipf_weights(50, 0.8)
        assert all(w[i] >= w[i + 1] for i in range(49))

    def test_alpha_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigError):
            zipf_weights(10, -1.0)

    def test_sampler_range(self):
        s = ZipfSampler(20, 1.2, seed=0)
        draws = s.sample(1000)
        assert draws.min() >= 0
        assert draws.max() < 20

    def test_sampler_skew(self):
        s = ZipfSampler(100, 1.5, seed=0)
        draws = s.sample(5000)
        # Rank 0 should dominate any mid-pack rank under alpha=1.5.
        assert (draws == 0).sum() > (draws == 50).sum()

    def test_sampler_deterministic_under_seed(self):
        a = ZipfSampler(50, 1.0, seed=3).sample(100)
        b = ZipfSampler(50, 1.0, seed=3).sample(100)
        assert np.array_equal(a, b)

    def test_sample_one_is_int(self):
        assert isinstance(ZipfSampler(10, 1.0, seed=0).sample_one(), int)

    def test_sample_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            ZipfSampler(10, 1.0, seed=0).sample(-1)

    def test_pmf_matches_weights(self):
        s = ZipfSampler(10, 0.7, seed=0)
        assert np.allclose(s.pmf(), zipf_weights(10, 0.7))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "30" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("s", [1, 2], [0.5, 0.25])
        assert text.startswith("s:")
        assert "(1, 0.5)" in text

    def test_format_series_rejects_mismatched(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_format_mapping(self):
        text = format_mapping("title", {"key": 1.5, "other": "x"})
        assert text.splitlines()[0] == "title"
        assert "key" in text and "other" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5], [0.1234567], [2.0]])
        assert "1,235" in text or "1,234" in text
        assert "0.1235" in text
