"""Every example script must run clean end to end.

Examples are the adoption surface; a refactor that breaks one breaks the
README.  Each runs in a subprocess with a generous timeout and must exit
zero and print its closing line.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "effective bandwidth",
    "advertising_ctr_serving.py": "Expected shape",
    "shopping_dlrm_inference.py": "vector integrity check passed",
    "capacity_planning.py": "Reading the tables",
    "placement_anatomy.py": "hot-pair coverage",
    "drift_operations.py": "post-swap serving",
    "slo_load_planning.py": "within the p99 budget",
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS), (
        "examples/ and EXPECTED_SNIPPETS are out of sync"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert EXPECTED_SNIPPETS[script] in completed.stdout, (
        f"{script} did not print its closing line"
    )
