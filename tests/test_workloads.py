"""Tests for repro.workloads: generator statistics, presets, trace I/O."""

import numpy as np
import pytest

from repro import (
    DATASETS,
    Query,
    QueryTrace,
    SyntheticTraceGenerator,
    WorkloadError,
    WorkloadSpec,
    get_preset,
    load_trace,
    make_trace,
    save_trace,
)
from repro.hypergraph import build_hypergraph
from repro.hypergraph.stats import hot_vertex_neighbour_breadth


class TestWorkloadSpec:
    def test_defaults_resolve_groups(self):
        spec = WorkloadSpec(num_keys=480, num_queries=10, mean_query_len=5)
        assert spec.resolved_num_groups() == 480 // 24

    def test_explicit_groups_win(self):
        spec = WorkloadSpec(
            num_keys=480, num_queries=10, mean_query_len=5, num_groups=7
        )
        assert spec.resolved_num_groups() == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_keys": 0, "num_queries": 1, "mean_query_len": 2},
            {"num_keys": 10, "num_queries": 0, "mean_query_len": 2},
            {"num_keys": 10, "num_queries": 1, "mean_query_len": 0.5},
            {
                "num_keys": 10,
                "num_queries": 1,
                "mean_query_len": 2,
                "group_size": 1,
            },
            {
                "num_keys": 10,
                "num_queries": 1,
                "mean_query_len": 2,
                "noise_fraction": 1.5,
            },
            {
                "num_keys": 10,
                "num_queries": 1,
                "mean_query_len": 2,
                "second_group_prob": -0.1,
            },
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)


class TestGenerator:
    def spec(self, **overrides):
        base = dict(
            num_keys=500,
            num_queries=300,
            mean_query_len=12.0,
            item_alpha=1.0,
            group_size=20,
        )
        base.update(overrides)
        return WorkloadSpec(**base)

    def test_trace_shape(self):
        trace = SyntheticTraceGenerator(self.spec(), seed=0).generate()
        assert len(trace) == 300
        assert trace.num_keys == 500
        for query in trace:
            assert all(0 <= k < 500 for k in query.keys)
            assert len(set(query.keys)) == len(query.keys)  # deduped

    def test_mean_length_close_to_target(self):
        trace = SyntheticTraceGenerator(self.spec(), seed=1).generate()
        # Dedup trims a little; allow a generous band.
        assert 7.0 <= trace.mean_query_length() <= 14.0

    def test_deterministic_under_seed(self):
        a = SyntheticTraceGenerator(self.spec(), seed=5).generate()
        b = SyntheticTraceGenerator(self.spec(), seed=5).generate()
        assert [q.keys for q in a] == [q.keys for q in b]

    def test_seeds_differ(self):
        a = SyntheticTraceGenerator(self.spec(), seed=1).generate()
        b = SyntheticTraceGenerator(self.spec(), seed=2).generate()
        assert [q.keys for q in a] != [q.keys for q in b]

    def test_popularity_skew(self):
        trace = SyntheticTraceGenerator(self.spec(), seed=0).generate()
        counts = np.zeros(500)
        for query in trace:
            for key in query.keys:
                counts[key] += 1
        top_share = np.sort(counts)[::-1][:50].sum() / counts.sum()
        # Top 10% of items should draw well over 10% of accesses.
        assert top_share > 0.3

    def test_no_id_locality(self):
        # Popular ids must be scattered: the mean id of hot items should
        # be near the middle of the id space, not near 0.
        trace = SyntheticTraceGenerator(self.spec(), seed=0).generate()
        counts = np.zeros(500)
        for query in trace:
            for key in query.keys:
                counts[key] += 1
        hot = np.argsort(counts)[::-1][:25]
        assert 100 < hot.mean() < 400

    def test_co_appearance_breadth_motivation(self):
        # The paper's §3 motivation must hold in generated traces: hot
        # vertices co-appear with more partners than one page holds.
        trace = SyntheticTraceGenerator(self.spec(), seed=0).generate()
        graph = build_hypergraph(trace)
        assert hot_vertex_neighbour_breadth(graph, 0.05) > 16

    def test_groups_exposed(self):
        generator = SyntheticTraceGenerator(self.spec(), seed=0)
        groups = generator.groups()
        assert len(groups) == self.spec().resolved_num_groups()
        for group in groups:
            assert len(group) >= 2

    def test_all_noise_still_valid(self):
        spec = self.spec(noise_fraction=1.0)
        trace = SyntheticTraceGenerator(spec, seed=0).generate()
        assert len(trace) == 300


class TestPresets:
    def test_all_five_datasets_present(self):
        assert set(DATASETS) == {
            "amazon_m2",
            "alibaba_ifashion",
            "avazu",
            "criteo",
            "criteo_tb",
        }

    def test_get_preset_unknown(self):
        with pytest.raises(WorkloadError):
            get_preset("netflix")

    def test_scales(self):
        preset = get_preset("criteo")
        assert preset.spec("bench").num_keys > preset.spec("small").num_keys
        with pytest.raises(WorkloadError):
            preset.spec("huge")

    def test_query_length_ratios_match_table3(self):
        # Mean query length ordering from the paper's Table 3:
        # amazon (5.24) < avazu (21) < criteo (26) < iFashion (53.6).
        lengths = {
            name: DATASETS[name].bench.mean_query_len
            for name in DATASETS
        }
        assert lengths["amazon_m2"] < lengths["avazu"]
        assert lengths["avazu"] < lengths["criteo"]
        assert lengths["criteo"] < lengths["alibaba_ifashion"]

    def test_flavours(self):
        assert get_preset("amazon_m2").flavour == "shopping"
        assert get_preset("criteo").flavour == "advertising"
        # Advertising datasets carry more noise than shopping ones.
        assert (
            get_preset("criteo").bench.noise_fraction
            > get_preset("alibaba_ifashion").bench.noise_fraction
        )

    def test_make_trace(self):
        trace, preset = make_trace("amazon_m2", scale="small", seed=1)
        assert preset.name == "amazon_m2"
        assert trace.num_keys == preset.spec("small").num_keys
        assert len(trace) == preset.spec("small").num_queries

    def test_criteo_tb_is_coldest(self):
        # CriteoTB has the weakest group skew (paper §8.3: "combination
        # relationships are colder").
        assert get_preset("criteo_tb").bench.group_alpha == min(
            p.bench.group_alpha for p in DATASETS.values()
        )


class TestTraceIo:
    def test_round_trip(self, tmp_path, tiny_trace):
        path = tmp_path / "trace.txt"
        save_trace(tiny_trace, path)
        loaded = load_trace(path)
        assert loaded.num_keys == tiny_trace.num_keys
        assert [q.keys for q in loaded] == [q.keys for q in tiny_trace]

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "absent.txt")

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(WorkloadError, match="header"):
            load_trace(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#keys abc\n1 2\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_non_integer_key(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#keys 5\n1 x\n")
        with pytest.raises(WorkloadError, match="non-integer"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#keys 5\n1 2\n\n3\n")
        loaded = load_trace(path)
        assert len(loaded) == 2
