"""Tests for repro.service: gateway core, quotas, coalescing, drain.

The load-bearing property throughout is the accounting invariant —
every offered request resolves as exactly one of completed / shed /
deadline-missed, even under concurrent submitters, engine errors, and
mid-stream shutdown — plus coalescing's two safety rules: batches never
mix tenants, and merged serving is bit-equivalent to individual replay
on the fault-free path.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import ConfigError, EngineConfig, PageLayout, Query, ServingEngine
from repro.overload import AdmissionConfig, BrownoutConfig
from repro.serving.openloop import OpenLoopReport, OpenLoopResult
from repro.serving.stats import aggregate_results
from repro.service import (
    CoalescerConfig,
    CoreLoadGenerator,
    GatewayCore,
    ServiceConfig,
    TenantConfig,
    TokenBucket,
)


@pytest.fixture
def layout():
    """Eight keys over three pages; keys 0/1/4/5 carry replicas."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4, 1, 5)],
    )


@pytest.fixture
def engine(layout):
    return ServingEngine(layout, EngineConfig(cache_ratio=0.0, threads=2))


class RecordingEngine:
    """Engine wrapper that logs every serve_query key set."""

    def __init__(self, inner):
        self.inner = inner
        self.config = inner.config
        self.served_keys = []
        self.close_calls = 0

    def serve_query(self, query, start_us=0.0, degrade=None):
        self.served_keys.append(tuple(query.keys))
        return self.inner.serve_query(query, start_us, degrade)

    def close(self):
        self.close_calls += 1

    def __getattr__(self, name):
        return getattr(self.inner, name)


class SlowEngine(RecordingEngine):
    """Adds real wall delay per call, to age queued requests."""

    def __init__(self, inner, delay_s=0.01):
        super().__init__(inner)
        self.delay_s = delay_s

    def serve_query(self, query, start_us=0.0, degrade=None):
        time.sleep(self.delay_s)
        return super().serve_query(query, start_us, degrade)


def run(coro):
    return asyncio.run(coro)


def check_invariant(core: GatewayCore) -> dict:
    """Assert offered == completed + shed + missed; return the metrics."""
    metrics = core.metrics()
    svc = metrics["service"]
    assert svc["offered"] == svc["accounted"], svc
    assert svc["accounted"] == (
        svc["completed"] + svc["shed_total"] + svc["deadline_misses"]
    )
    # The open_loop section must agree with the service section.
    ol = metrics["open_loop"]
    assert ol["completed"] == svc["completed"]
    assert ol["shed_total"] == svc["shed_total"]
    assert ol["deadline_misses"] == svc["deadline_misses"]
    assert ol["offered"] == svc["offered"]
    return metrics


# ---------------------------------------------------------------------------
# accounting invariant under concurrency
# ---------------------------------------------------------------------------


class TestInvariant:
    def test_concurrent_submitters_account_exactly(self, engine):
        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(max_batch=4, max_wait_us=200.0),
                admission=AdmissionConfig(capacity=4, policy="tail"),
                max_concurrent_batches=1,
            )
            async with GatewayCore(engine, config) as core:
                outcomes = await asyncio.gather(
                    *(
                        core.submit((i % 8,), f"tenant-{i % 3}")
                        for i in range(60)
                    )
                )
                metrics = check_invariant(core)
            return outcomes, metrics

        outcomes, metrics = run(scenario())
        assert len(outcomes) == 60
        assert metrics["service"]["offered"] == 60
        statuses = {o.status for o in outcomes}
        assert statuses <= {"ok", "shed", "miss"}
        completed = sum(1 for o in outcomes if o.ok)
        shed = sum(1 for o in outcomes if o.status == "shed")
        assert completed == metrics["service"]["completed"]
        assert shed == metrics["service"]["shed_total"]
        # The tiny waiting room under one in-flight batch must shed some.
        assert shed > 0

    def test_engine_error_sheds_instead_of_hanging(self, engine):
        class ExplodingEngine(RecordingEngine):
            def serve_query(self, query, start_us=0.0, degrade=None):
                raise RuntimeError("device on fire")

        async def scenario():
            core = GatewayCore(ExplodingEngine(engine), ServiceConfig())
            async with core:
                outcome = await asyncio.wait_for(
                    core.submit((0, 1)), timeout=5
                )
                metrics = check_invariant(core)
            return outcome, metrics

        outcome, metrics = run(scenario())
        assert outcome.status == "shed"
        assert outcome.shed_reason == "error"
        assert outcome.http_status() == 503
        assert metrics["service"]["shed"] == {"error": 1}
        assert "RuntimeError" in metrics["service"]["batch_errors"][0]
        # The swallowed error is exported as a monotonic counter plus
        # the last error string, so scrapers see failures the capped
        # sample list would eventually hide.
        assert metrics["service"]["batch_errors_total"] == 1
        assert "RuntimeError" in metrics["service"]["last_batch_error"]

    def test_replicated_cluster_exports_replica_section(self):
        from repro import (
            MaxEmbedConfig,
            QueryTrace,
            ShpConfig,
            build_sharded_layout,
        )
        from repro.cluster import ClusterEngine
        from repro.service import render_prometheus

        trace = QueryTrace(
            8, [Query((0, 1, 2, 3)), Query((4, 5, 6, 7))] * 4
        )
        config = MaxEmbedConfig(
            num_shards=2,
            shard_strategy="modulo",
            shp=ShpConfig(max_iterations=2),
        )
        sharded = build_sharded_layout(trace, config)
        cluster = ClusterEngine(
            sharded, EngineConfig(cache_ratio=0.0, replicas=2)
        )

        async def scenario():
            async with GatewayCore(cluster, ServiceConfig()) as core:
                for query in trace.queries[:4]:
                    await asyncio.wait_for(
                        core.submit(tuple(query.keys)), timeout=5
                    )
                return check_invariant(core)

        metrics = run(scenario())
        section = metrics["replicas"]
        assert section["num_replicas"] == 2
        assert section["states"]["healthy"] == 4
        for counter in (
            "failovers",
            "hedges",
            "hedge_wins",
            "hedges_denied",
            "replica_probes",
            "replica_resyncs",
            "replica_transitions",
        ):
            assert counter in section["counters"]
        text = render_prometheus(metrics)
        assert 'maxembed_replicas_states{key="healthy"} 4' in text
        assert "maxembed_replicas_counters_failovers 0" in text

    def test_batch_errors_total_outlives_the_sample_cap(self, engine):
        class ExplodingEngine(RecordingEngine):
            def serve_query(self, query, start_us=0.0, degrade=None):
                raise RuntimeError("device on fire")

        from repro.service import render_prometheus

        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(enabled=False)
            )
            core = GatewayCore(ExplodingEngine(engine), config)
            async with core:
                for _ in range(20):
                    await asyncio.wait_for(core.submit((0,)), timeout=5)
                metrics = check_invariant(core)
            return metrics

        metrics = run(scenario())
        svc = metrics["service"]
        # The sample list caps at 16; the counter keeps counting.
        assert len(svc["batch_errors"]) == 16
        assert svc["batch_errors_total"] == 20
        assert "RuntimeError" in svc["last_batch_error"]
        text = render_prometheus(metrics)
        assert "maxembed_service_batch_errors_total 20" in text

    def test_deadline_miss_accounted(self, engine):
        async def scenario():
            slow = SlowEngine(engine, delay_s=0.02)
            config = ServiceConfig(
                coalescer=CoalescerConfig(enabled=False),
                admission=AdmissionConfig(
                    capacity=64, queue_deadline_us=1.0
                ),
                max_concurrent_batches=1,
            )
            async with GatewayCore(slow, config) as core:
                outcomes = await asyncio.gather(
                    *(core.submit((i % 8,)) for i in range(10))
                )
                metrics = check_invariant(core)
            return outcomes, metrics

        outcomes, metrics = run(scenario())
        misses = [o for o in outcomes if o.status == "miss"]
        # The first request holds the only batch slot for 20 ms; every
        # waiter's 1 us queue deadline has long lapsed by then.
        assert misses
        assert metrics["service"]["deadline_misses"] == len(misses)
        assert all(o.http_status() == 503 for o in misses)


# ---------------------------------------------------------------------------
# coalescing
# ---------------------------------------------------------------------------


class TestCoalescing:
    def test_batches_never_mix_tenants(self, engine):
        """Tenant A queries keys 0-3, tenant B keys 4-7: every engine
        call (merged or not) must stay inside one tenant's key space."""
        recorder = RecordingEngine(engine)

        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(max_batch=8, max_wait_us=5_000.0),
                max_concurrent_batches=1,
            )
            async with GatewayCore(recorder, config) as core:
                await asyncio.gather(
                    *(
                        core.submit(
                            ((i % 4) + (4 if i % 2 else 0),),
                            "b" if i % 2 else "a",
                        )
                        for i in range(40)
                    )
                )
                log = core.batch_log
                check_invariant(core)
            return log

        log = run(scenario())
        assert sum(size for _, size in log) == 40
        a_space, b_space = set(range(0, 4)), set(range(4, 8))
        for keys in recorder.served_keys:
            spaces = {k in b_space for k in keys}
            assert len(spaces) == 1, f"tenant key spaces mixed: {keys}"

    def test_merged_parity_with_individual_replay(self, layout):
        """Fault-free coalesced serving returns the same per-request
        answer (requested/served/missing/status) as individual replay."""
        queries = [Query(((i % 8), (i * 3) % 8)) for i in range(30)]

        async def scenario():
            gateway_engine = ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, threads=2)
            )
            config = ServiceConfig(
                coalescer=CoalescerConfig(max_batch=8, max_wait_us=5_000.0),
                max_concurrent_batches=1,
            )
            async with GatewayCore(gateway_engine, config) as core:
                outcomes = await asyncio.gather(
                    *(core.submit(q.keys) for q in queries)
                )
                merged = core.metrics()["service"]["coalescer"][
                    "merged_batches"
                ]
            return outcomes, merged

        outcomes, merged = run(scenario())
        assert merged > 0, "expected at least one coalesced flush"
        replay_engine = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0, threads=2)
        )
        for query, outcome in zip(queries, outcomes):
            result = replay_engine.serve_query(query, 0.0)
            assert outcome.ok
            assert outcome.served == len(query.unique_keys())
            assert outcome.missing == result.missing_keys == 0
            assert outcome.degrade_level == result.degrade_level == 0

    def test_idle_flush_is_immediate(self, engine):
        """A lone request must not wait out max_wait_us on an idle
        gateway — the idle bypass flushes it immediately."""

        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(
                    max_batch=64, max_wait_us=30_000_000.0
                )
            )
            async with GatewayCore(engine, config) as core:
                t0 = time.monotonic()
                outcome = await asyncio.wait_for(
                    core.submit((0, 1, 2)), timeout=5
                )
                return outcome, time.monotonic() - t0

        outcome, elapsed = run(scenario())
        assert outcome.ok
        assert elapsed < 2.0

    def test_faulty_engine_disables_union_merging(self, layout):
        """With a fault plan the gateway must serve members one by one
        (missing keys need per-request attribution)."""
        from repro.faults import FaultPlan

        async def scenario():
            faulty = ServingEngine(
                layout,
                EngineConfig(
                    cache_ratio=0.0,
                    threads=2,
                    fault_plan=FaultPlan.from_spec("seed=3,read_error=0.3"),
                ),
            )
            config = ServiceConfig(
                coalescer=CoalescerConfig(max_batch=8, max_wait_us=5_000.0),
                max_concurrent_batches=1,
            )
            async with GatewayCore(faulty, config) as core:
                outcomes = await asyncio.gather(
                    *(core.submit((i % 8,)) for i in range(20))
                )
                metrics = check_invariant(core)
            return outcomes, metrics

        outcomes, metrics = run(scenario())
        coalescer = metrics["service"]["coalescer"]
        assert coalescer["merged_batches"] == 0
        assert coalescer["batches"] >= 1
        assert all(o.ok for o in outcomes)

    def test_disabled_coalescer_serves_singly(self, engine):
        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(enabled=False),
                max_concurrent_batches=1,
            )
            async with GatewayCore(engine, config) as core:
                await asyncio.gather(
                    *(core.submit((i % 8,)) for i in range(12))
                )
                return core.metrics()["service"]["coalescer"]

        coalescer = run(scenario())
        assert coalescer["batches"] == 12
        assert coalescer["merged_batches"] == 0
        assert coalescer["mean_batch_size"] == 1.0


# ---------------------------------------------------------------------------
# quotas and priorities
# ---------------------------------------------------------------------------


class TestQuota:
    def test_token_bucket_refills_continuously(self):
        bucket = TokenBucket(rate_qps=2.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        # 2 qps = one token per 500 ms = 500_000 us.
        assert not bucket.try_take(100_000.0)
        assert bucket.try_take(600_000.0)
        # Refill clamps at burst.
        bucket2 = TokenBucket(rate_qps=1000.0, burst=3)
        bucket2.try_take(0.0)
        bucket2._refill(10_000_000.0)
        assert bucket2.tokens == 3.0

    def test_token_bucket_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate_qps=0.0, burst=1)
        with pytest.raises(ConfigError):
            TokenBucket(rate_qps=1.0, burst=0)

    def test_over_quota_is_shed_with_429(self, engine):
        async def scenario():
            config = ServiceConfig(
                tenants=(
                    TenantConfig(name="metered", rate_qps=0.001, burst=2),
                )
            )
            async with GatewayCore(engine, config) as core:
                first = await core.submit((0,), "metered")
                second = await core.submit((1,), "metered")
                third = await core.submit((2,), "metered")
                unmetered = await core.submit((3,), "other")
                metrics = check_invariant(core)
            return first, second, third, unmetered, metrics

        first, second, third, unmetered, metrics = run(scenario())
        assert first.ok and second.ok
        assert third.status == "shed"
        assert third.shed_reason == "quota"
        assert third.http_status() == 429
        assert unmetered.ok  # other tenants are untouched
        assert metrics["service"]["shed"] == {"quota": 1}

    def test_tenant_priority_feeds_admission(self, engine):
        """Under the priority policy a hot tenant's request evicts a
        cold tenant's waiter when the queue is full."""

        async def scenario():
            slow = SlowEngine(engine, delay_s=0.05)
            config = ServiceConfig(
                coalescer=CoalescerConfig(enabled=False),
                admission=AdmissionConfig(capacity=1, policy="priority"),
                tenants=(
                    TenantConfig(name="gold", priority=10.0),
                    TenantConfig(name="bronze", priority=0.0),
                ),
                max_concurrent_batches=1,
            )
            async with GatewayCore(slow, config) as core:
                # Occupy the single batch slot, then fill the queue with
                # a bronze waiter; gold arrives into the full queue.
                blocker = asyncio.ensure_future(core.submit((0,), "bronze"))
                await asyncio.sleep(0.01)
                bronze = asyncio.ensure_future(core.submit((1,), "bronze"))
                await asyncio.sleep(0.005)
                gold = asyncio.ensure_future(core.submit((2,), "gold"))
                results = await asyncio.gather(blocker, bronze, gold)
                check_invariant(core)
            return results

        blocker, bronze, gold = run(scenario())
        assert blocker.ok
        assert gold.ok, "high-priority tenant should evict the cold waiter"
        assert bronze.status == "shed"
        assert bronze.shed_reason == "priority"


# ---------------------------------------------------------------------------
# brownout integration
# ---------------------------------------------------------------------------


class TestBrownout:
    def test_sustained_pressure_degrades_requests(self, engine):
        async def scenario():
            # Watermarks far below the engine's simulated latencies, so
            # the very first completion trips the ladder.
            config = ServiceConfig(
                coalescer=CoalescerConfig(max_batch=4, max_wait_us=100.0),
                brownout=BrownoutConfig(
                    high_watermark_us=1.0,
                    low_watermark_us=0.5,
                    window=4,
                    dwell_us=0.0,
                ),
                max_concurrent_batches=1,
            )
            async with GatewayCore(engine, config) as core:
                outcomes = []
                for i in range(12):
                    outcomes.append(await core.submit((i % 8,)))
                metrics = check_invariant(core)
            return outcomes, metrics

        outcomes, metrics = run(scenario())
        assert metrics["service"]["brownout_level"] > 0
        assert any(o.degrade_level > 0 for o in outcomes)
        assert metrics["open_loop"]["brownout_transitions"] >= 1


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_sheds_waiters_and_closes_engine_once(self, engine):
        recorder = SlowEngine(engine, delay_s=0.05)

        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(enabled=False),
                max_concurrent_batches=1,
            )
            core = GatewayCore(recorder, config)
            await core.start()
            submissions = [
                asyncio.ensure_future(core.submit((i % 8,)))
                for i in range(6)
            ]
            await asyncio.sleep(0.01)  # first request enters the engine
            await core.stop()
            outcomes = await asyncio.gather(*submissions)
            late = await core.submit((0,))
            metrics = check_invariant(core)
            await core.stop()  # idempotent
            return outcomes, late, metrics

        outcomes, late, metrics = run(scenario())
        assert all(o.status in ("ok", "shed") for o in outcomes)
        completed = [o for o in outcomes if o.ok]
        drained = [o for o in outcomes if o.shed_reason == "drain"]
        assert completed, "the in-flight request must complete"
        assert drained, "queued waiters must be shed on drain"
        assert late.shed_reason == "drain"
        assert recorder.close_calls == 1
        assert metrics["service"]["draining"] is True

    def test_engine_without_close_is_fine(self, engine):
        async def scenario():
            async with GatewayCore(engine, ServiceConfig()) as core:
                outcome = await core.submit((0,))
            return outcome

        assert run(scenario()).ok


# ---------------------------------------------------------------------------
# core load generator
# ---------------------------------------------------------------------------


class TestCoreLoadGenerator:
    def test_closed_loop_reconciles_with_gateway(self, engine):
        async def scenario():
            config = ServiceConfig(
                coalescer=CoalescerConfig(max_batch=8, max_wait_us=500.0)
            )
            async with GatewayCore(engine, config) as core:
                generator = CoreLoadGenerator(
                    core,
                    [Query((i % 8,)) for i in range(16)],
                    concurrency=4,
                    duration_s=0.3,
                )
                report = await generator.run()
                metrics = check_invariant(core)
            return report, metrics

        report, metrics = run(scenario())
        assert report.offered > 0
        assert report.offered == (
            report.completed + report.shed_total + report.errors
        )
        assert report.completed == metrics["service"]["completed"]
        assert report.achieved_qps() > 0
        assert report.goodput_qps() > 0
        d = report.as_dict(latency_slo_us=10_000_000.0)
        assert d["offered"] == report.offered
        assert d["errors"] == 0


# ---------------------------------------------------------------------------
# report serialization (as_dict parity with ClusterReport)
# ---------------------------------------------------------------------------


class TestReportDicts:
    def test_serving_report_as_dict(self, engine):
        results = [
            engine.serve_query(Query((i % 8, (i + 1) % 8)), float(i * 10))
            for i in range(10)
        ]
        report = aggregate_results(results, page_size=4096, embedding_bytes=256)
        data = report.as_dict()
        assert data["queries"] == 10
        assert data["requested_keys"] == report.total_requested
        assert data["pages_read"] == report.total_pages_read
        assert data["coverage"] == 1.0
        assert 0.0 <= data["cache_hit_rate"] <= 1.0
        assert data["missing_keys"] == 0
        # JSON-ready: every value is a plain scalar.
        assert all(
            isinstance(v, (int, float, str)) for v in data.values()
        )

    def test_open_loop_report_as_dict(self):
        results = [
            OpenLoopResult(
                arrival_us=float(i),
                start_us=float(i),
                finish_us=float(i + 100),
                requested_keys=2,
                missing_keys=0,
            )
            for i in range(8)
        ]
        report = OpenLoopReport(
            offered_qps=100.0,
            results=results,
            offered=10,
            shed={"tail": 1},
            deadline_misses=1,
        )
        data = report.as_dict()
        assert data["offered"] == 10
        assert data["completed"] == 8
        assert data["offered"] == (
            data["completed"] + data["shed_total"] + data["deadline_misses"]
        )
        assert data["shed"] == {"tail": 1}
        assert data["p99_latency_us"] == 100.0
        # The SLO threads through to goodput.
        strict = report.as_dict(latency_slo_us=1.0)
        assert strict["goodput_qps"] == 0.0
        assert report.as_dict(latency_slo_us=1e9)["goodput_qps"] > 0


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_bad_values_raise(self):
        with pytest.raises(ConfigError):
            CoalescerConfig(max_batch=0)
        with pytest.raises(ConfigError):
            CoalescerConfig(max_wait_us=-1.0)
        with pytest.raises(ConfigError):
            TenantConfig(name="")
        with pytest.raises(ConfigError):
            TenantConfig(name="t", rate_qps=-1.0)
        with pytest.raises(ConfigError):
            ServiceConfig(max_concurrent_batches=0)
        with pytest.raises(ConfigError):
            ServiceConfig(time_scale=0.0)
        with pytest.raises(ConfigError):
            ServiceConfig(
                tenants=(
                    TenantConfig(name="dup"),
                    TenantConfig(name="dup"),
                )
            )

    def test_tenant_lookup_falls_back_to_default(self):
        config = ServiceConfig(tenants=(TenantConfig(name="a", priority=2.0),))
        assert config.tenant("a").priority == 2.0
        assert config.tenant("unknown").name == "default"
        assert config.tenant("unknown").rate_qps is None

    def test_malformed_query_rejected_before_accounting(self, engine):
        async def scenario():
            async with GatewayCore(engine, ServiceConfig()) as core:
                with pytest.raises(ConfigError):
                    await core.submit(())
                with pytest.raises(ConfigError):
                    await core.submit((-1,))
                return core.metrics()["service"]["offered"]

        assert run(scenario()) == 0
