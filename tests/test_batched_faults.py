"""Fault injection through the batched and NDP command paths.

The per-page recovery contract of ``test_fault_recovery`` must survive
the command-path change of who talks to the device:

* a no-op plan on the batched/ndp path is bit-identical to the same
  path without the fault subsystem mounted;
* batched waves retry their failed sub-reads individually (the batch
  consumed attempt 0; retries start at 1) and recover transients;
* a faulted gather falls back to per-page reads, so NDP serving loses
  exactly the unrecoverable keys, never the whole gather;
* the accounting identity ``requested == cache_hits + ssd_keys +
  missing`` holds per query on every path, whatever the draw.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import (
    EngineConfig,
    FaultPlan,
    PageLayout,
    Query,
    RetryPolicy,
    ServingEngine,
)

# CI's chaos job sweeps this to replay the suite under different fault
# draws; the properties under test are seed-independent.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

PATHS = ["batched", "ndp"]

REPLICATED_PAGES = [
    (0, 1, 2, 3),
    (4, 5, 6, 7),
    (8, 9, 10, 11),
    (12, 13, 14, 15),
    (0, 4, 8, 12),
    (1, 5, 9, 13),
]


def replicated_layout() -> PageLayout:
    return PageLayout(16, 4, REPLICATED_PAGES, num_base_pages=4)


def holders(key: int):
    return [p for p, page in enumerate(REPLICATED_PAGES) if key in page]


class TestFaultFreeParity:
    @pytest.mark.parametrize("path", PATHS)
    def test_no_op_plan_is_bit_identical(
        self, path, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:200]
        baseline = ServingEngine(
            maxembed_layout_small,
            EngineConfig(device_command_path=path),
        )
        guarded = ServingEngine(
            maxembed_layout_small,
            EngineConfig(device_command_path=path, fault_plan=FaultPlan()),
        )
        assert baseline.serve_trace(queries) == guarded.serve_trace(queries)


class TestBatchedRecovery:
    def test_transients_recovered_by_per_read_retries(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                device_command_path="batched",
                fault_plan=FaultPlan(
                    seed=7 + FAULT_SEED, read_error_rate=0.05
                ),
            ),
        )
        report = engine.serve_trace(list(live))
        assert report.total_retries > 0
        assert report.coverage() > 0.99
        assert engine.fault_counters["read_error"] > 0

    def test_heavy_faults_degrade_without_raising(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                device_command_path="batched",
                fault_plan=FaultPlan(
                    seed=7 + FAULT_SEED,
                    read_error_rate=0.3,
                    dead_page_rate=0.1,
                ),
                retry=RetryPolicy(max_retries=1),
            ),
        )
        report = engine.serve_trace(list(live))  # must not raise
        assert report.total_failed_reads > 0
        assert 0.0 < report.coverage() < 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        dead_rate=st.sampled_from([0.2, 0.45, 0.7]),
        keys=st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=8,
            unique=True,
        ),
    )
    def test_dead_pages_lose_exactly_the_unrecoverable_keys(
        self, seed, dead_rate, keys
    ):
        """The batched wave's replica recovery is exact, like serial's."""
        plan = FaultPlan(seed=seed ^ FAULT_SEED, dead_page_rate=dead_rate)
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                device_command_path="batched",
                fault_plan=plan,
                retry=RetryPolicy(max_retries=0),
            ),
        )
        expected_missing = sum(
            1
            for key in keys
            if all(plan.page_is_dead(p) for p in holders(key))
        )
        result = engine.serve_query(Query(tuple(keys)))
        assert result.missing_keys == expected_missing
        assert result.ssd_keys == len(keys) - expected_missing


class TestNdpRecovery:
    def test_faulted_gather_falls_back_to_pages(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                device_command_path="ndp",
                fault_plan=FaultPlan(
                    seed=11 + FAULT_SEED, read_error_rate=0.05
                ),
            ),
        )
        report = engine.serve_trace(list(live))
        assert report.total_retries > 0
        assert report.coverage() > 0.99

    def test_dead_page_kills_only_its_keys(self):
        plan = FaultPlan(seed=13 + FAULT_SEED, dead_page_rate=0.4)
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                device_command_path="ndp",
                fault_plan=plan,
                retry=RetryPolicy(max_retries=0),
            ),
        )
        keys = list(range(16))
        expected_missing = sum(
            1
            for key in keys
            if all(plan.page_is_dead(p) for p in holders(key))
        )
        result = engine.serve_query(Query(tuple(keys)))
        assert result.missing_keys == expected_missing

    def test_corrupt_gathers_retried_at_command_grain(self):
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                device_command_path="ndp",
                fault_plan=FaultPlan(
                    seed=5 + FAULT_SEED, corrupt_rate=0.5
                ),
                retry=RetryPolicy(max_retries=8, backoff_us=5.0),
            ),
        )
        clean = ServingEngine(
            replicated_layout(),
            EngineConfig(cache_ratio=0.0, device_command_path="ndp"),
        )
        query = Query(tuple(range(16)))
        faulty_result = engine.serve_query(query)
        clean_result = clean.serve_query(query)
        assert faulty_result.missing_keys == 0
        assert faulty_result.latency_us > clean_result.latency_us


class TestAccountingIdentity:
    @pytest.mark.parametrize("path", PATHS)
    @pytest.mark.parametrize(
        "plan_kwargs",
        [
            {"read_error_rate": 0.4, "corrupt_rate": 0.1},
            {"dead_page_rate": 0.3, "latency_spike_rate": 0.2},
            {"read_error_rate": 0.2, "brownouts": ((50.0, 500.0),)},
        ],
    )
    def test_no_key_dropped_or_double_counted(self, path, plan_kwargs):
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                device_command_path=path,
                fault_plan=FaultPlan(seed=3 + FAULT_SEED, **plan_kwargs),
                retry=RetryPolicy(max_retries=1, backoff_us=10.0),
            ),
        )
        for seed_key in range(40):
            query = Query(tuple({seed_key % 16, (seed_key * 7) % 16}))
            result = engine.serve_query(query)
            assert result.requested_keys == (
                result.cache_hits + result.ssd_keys + result.missing_keys
            )

    @pytest.mark.parametrize("path", PATHS)
    def test_raid_array_behind_faults(
        self, path, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                device_command_path=path,
                raid_members=2,
                fault_plan=FaultPlan(
                    seed=17 + FAULT_SEED, read_error_rate=0.05
                ),
            ),
        )
        report = engine.serve_trace(list(live)[:400])
        assert report.coverage() > 0.99
