"""Tests for repro.replication.incremental: online replica refresh."""

import pytest

from repro import ConfigError, PageLayout, Query, QueryTrace
from repro.metrics import evaluate_placement
from repro.replication import IncrementalReplicator
from repro.workloads.drift import drifted_trace_for


@pytest.fixture
def layout():
    return PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])


@pytest.fixture
def cross_window():
    """Queries that straddle the two base pages: (0,4) is the hot combo."""
    return QueryTrace(8, [Query((0, 4))] * 6 + [Query((1, 5))] * 2)


class TestExtend:
    def test_zero_budget_returns_same_layout(self, layout, cross_window):
        assert (
            IncrementalReplicator().extend(layout, cross_window, 0)
            is layout
        )

    def test_appends_page_for_hot_cross_combo(self, layout, cross_window):
        refreshed = IncrementalReplicator().extend(layout, cross_window, 1)
        assert refreshed.num_pages == 3
        new_page = set(refreshed.page(2))
        assert {0, 4} <= new_page  # the hottest straddling pair

    def test_base_pages_untouched(self, layout, cross_window):
        refreshed = IncrementalReplicator().extend(layout, cross_window, 2)
        assert refreshed.pages()[:2] == layout.pages()
        assert refreshed.num_base_pages == layout.num_base_pages

    def test_budget_respected(self, layout, cross_window):
        refreshed = IncrementalReplicator().extend(layout, cross_window, 1)
        assert refreshed.num_pages - layout.num_pages <= 1

    def test_no_duplicate_pages_emitted(self, layout):
        # The only combo is already co-located on a base page: nothing to add.
        window = QueryTrace(8, [Query((0, 1))] * 5)
        refreshed = IncrementalReplicator().extend(layout, window, 3)
        assert refreshed is layout

    def test_already_replicated_combo_scores_zero(self, cross_window):
        # Layout already carries the (0, 4) replica: refresh should not
        # spend budget re-covering it.
        layout = PageLayout(
            8,
            4,
            [(0, 1, 2, 3), (4, 5, 6, 7), (0, 4)],
            num_base_pages=2,
        )
        window = QueryTrace(8, [Query((0, 4))] * 10)
        refreshed = IncrementalReplicator().extend(layout, window, 2)
        assert refreshed is layout

    def test_improves_bandwidth_on_observed_window(
        self, layout, cross_window
    ):
        before = evaluate_placement(layout, cross_window)
        refreshed = IncrementalReplicator().extend(layout, cross_window, 2)
        after = evaluate_placement(refreshed, cross_window)
        assert after.effective_fraction() > before.effective_fraction()

    def test_validation(self, layout):
        replicator = IncrementalReplicator()
        with pytest.raises(ConfigError):
            replicator.extend(layout, QueryTrace(9, [Query((0,))]), 1)
        with pytest.raises(ConfigError):
            replicator.extend(
                layout, QueryTrace(8, [Query((0,))]), -1
            )


class TestDriftRecovery:
    def test_refresh_recovers_on_drifted_traffic(self, criteo_small):
        from repro import MaxEmbedConfig, ShpConfig
        from repro.core import build_offline_layout

        history, _ = criteo_small
        layout = build_offline_layout(
            history,
            MaxEmbedConfig(
                replication_ratio=0.4,
                shp=ShpConfig(max_iterations=6, seed=0),
            ),
        )
        drifted = drifted_trace_for("criteo", scale="small", drift_seed=9)
        d_history, d_live = drifted.split(0.5)
        stale = evaluate_placement(
            layout, d_live, max_queries=200
        ).effective_fraction()
        refreshed = IncrementalReplicator().extend(
            layout, d_history, layout.num_replica_pages
        )
        after = evaluate_placement(
            refreshed, d_live, max_queries=200
        ).effective_fraction()
        assert after > stale
