"""Failure-injection tests: tight queues, malformed artifacts, bad inputs.

A production embedding store must degrade predictably, not crash: tiny
submission queues stall the CPU instead of erroring, corrupt artifacts
fail loudly at load time, and every invalid request is rejected at the
API boundary with a typed error.
"""

import pytest

from repro import (
    EngineConfig,
    PageLayout,
    PlacementError,
    Query,
    QueryTrace,
    ReproError,
    ServingEngine,
    ServingError,
    SimulatedSsd,
    StorageError,
    WorkloadError,
)
from repro.placement import load_layout
from repro.serving import PipelinedExecutor, SerialExecutor
from repro.serving.selection import SelectionOutcome, SelectionStep
from repro.ssd import SsdProfile
from repro.workloads import load_trace


def tiny_queue_device(queue_depth=2, latency=10.0):
    profile = SsdProfile(
        "tiny-queue",
        read_latency_us=latency,
        bandwidth_gb_s=0.004096,  # 1 page per 1000 us
        queue_depth=queue_depth,
    )
    return SimulatedSsd(profile, page_size=4096)


def many_step_outcome(steps=8):
    return SelectionOutcome(
        tuple(
            SelectionStep(page_id=p, covered=(p,), candidates_examined=1)
            for p in range(steps)
        ),
        sorted_keys=steps,
    )


class TestQueueBackpressure:
    @pytest.mark.parametrize("executor_cls", [PipelinedExecutor, SerialExecutor])
    def test_full_queue_stalls_instead_of_crashing(self, executor_cls):
        device = tiny_queue_device(queue_depth=2)
        outcome = many_step_outcome(steps=8)
        result = executor_cls().execute(outcome, device, 0.0)
        assert result.pages_read == 8
        # Backpressure serializes on the 1-page-per-1000us bandwidth:
        # the query finishes only after the last slot.
        assert result.latency_us > 6000.0

    def test_backpressure_advances_clock_to_completion(self):
        device = tiny_queue_device(queue_depth=1)
        outcome = many_step_outcome(steps=3)
        result = PipelinedExecutor().execute(outcome, device, 0.0)
        assert device.inflight == 0 or device.inflight <= 1
        assert result.finish_us >= 2000.0

    def test_engine_serves_with_tiny_queue(self):
        layout = PageLayout(
            8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)]
        )
        engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
        engine.device = tiny_queue_device(queue_depth=1)
        trace = QueryTrace(8, [Query((0, 4))] * 5)
        report = engine.serve_trace(trace)
        assert report.num_queries == 5

    def test_direct_submit_still_enforces_depth(self):
        # The raw device API (no executor) keeps its hard failure mode.
        device = tiny_queue_device(queue_depth=1)
        device.submit_read(0, 0.0)
        with pytest.raises(StorageError):
            device.submit_read(1, 0.0)


class TestCorruptArtifacts:
    def test_layout_json_with_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text(
            '{"num_keys": 4, "capacity": 4, "num_base_pages": 1, '
            '"pages": [[0, 1]]}'
        )
        with pytest.raises(PlacementError, match="on no page"):
            load_layout(path)

    def test_layout_json_with_oversized_page_rejected(self, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text(
            '{"num_keys": 3, "capacity": 2, "num_base_pages": 1, '
            '"pages": [[0, 1, 2]]}'
        )
        with pytest.raises(PlacementError):
            load_layout(path)

    def test_truncated_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#keys 4\n0 1\n9 9\n")
        with pytest.raises((WorkloadError, ReproError)):
            load_trace(path)

    def test_binary_garbage_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_bytes(b"\x00\x01binary\xff")
        with pytest.raises((WorkloadError, UnicodeDecodeError)):
            load_trace(path)


class TestApiBoundaries:
    def test_unknown_key_rejected_by_engine(self):
        layout = PageLayout(4, 4, [(0, 1, 2, 3)])
        engine = ServingEngine(layout, EngineConfig(cache_ratio=0.0))
        with pytest.raises(ServingError):
            engine.serve_query(Query((99,)))

    def test_all_errors_share_base_class(self):
        from repro import (
            CacheError,
            ConfigError,
            HypergraphError,
            PartitionError,
        )

        for error in (
            CacheError,
            ConfigError,
            HypergraphError,
            PartitionError,
            PlacementError,
            ServingError,
            StorageError,
            WorkloadError,
        ):
            assert issubclass(error, ReproError)
