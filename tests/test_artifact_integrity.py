"""Artifact integrity: magic/version/CRC32 envelopes on every persisted file.

Every artifact the library writes — layouts, sharded layouts, CSR index
bundles, store bundles — must detect truncation and bit flips at load
time with a typed :class:`CorruptArtifactError`, while files written
before checksumming existed keep loading (with a warning).
"""

import json

import numpy as np
import pytest

from repro import (
    ConfigError,
    CorruptArtifactError,
    MaxEmbedConfig,
    PageLayout,
    PlacementError,
    ShpConfig,
    build_sharded_layout,
    load_sharded_layout,
    save_sharded_layout,
)
from repro.core import MaxEmbedStore, load_store, save_store
from repro.integrity import (
    MAGIC_LAYOUT,
    UncheckedArtifactWarning,
    checksum,
    crc32_file,
    unwrap_document,
    wrap_document,
)
from repro.placement import (
    CsrIndexes,
    load_indexes,
    load_layout,
    save_indexes,
    save_layout,
)
from repro.types import Query, QueryTrace


@pytest.fixture
def layout() -> PageLayout:
    return PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7), (0, 4)], 2)


@pytest.fixture
def sharded():
    trace = QueryTrace(8, [Query((0, 1, 2, 3)), Query((4, 5, 6, 7))] * 4)
    config = MaxEmbedConfig(num_shards=2, shp=ShpConfig(max_iterations=2))
    return build_sharded_layout(trace, config)


def flip_payload_bit(path) -> None:
    """Corrupt a wrapped JSON artifact inside its checksummed payload."""
    document = json.loads(path.read_text())
    document["payload"]["num_keys"] += 1
    path.write_text(json.dumps(document))


class TestEnvelopePrimitives:
    def test_checksum_is_canonical(self):
        assert checksum({"a": 1, "b": 2}) == checksum({"b": 2, "a": 1})

    def test_wrap_unwrap_round_trip(self):
        payload = {"k": [1, 2, 3]}
        document = wrap_document(MAGIC_LAYOUT, payload)
        assert unwrap_document(MAGIC_LAYOUT, document) == payload

    def test_wrong_magic_rejected(self):
        document = wrap_document("maxembed-other", {"k": 1})
        with pytest.raises(CorruptArtifactError, match="magic"):
            unwrap_document(MAGIC_LAYOUT, document)

    def test_unsupported_version_rejected(self):
        document = wrap_document(MAGIC_LAYOUT, {"k": 1})
        document["version"] = 99
        with pytest.raises(CorruptArtifactError, match="version"):
            unwrap_document(MAGIC_LAYOUT, document)

    def test_missing_crc_rejected(self):
        document = wrap_document(MAGIC_LAYOUT, {"k": 1})
        del document["crc32"]
        with pytest.raises(CorruptArtifactError, match="truncated"):
            unwrap_document(MAGIC_LAYOUT, document)

    def test_tampered_payload_rejected(self):
        document = wrap_document(MAGIC_LAYOUT, {"k": 1})
        document["payload"]["k"] = 2
        with pytest.raises(CorruptArtifactError, match="integrity"):
            unwrap_document(MAGIC_LAYOUT, document)

    def test_legacy_document_warns_and_passes_through(self):
        with pytest.warns(UncheckedArtifactWarning):
            assert unwrap_document(MAGIC_LAYOUT, {"k": 1}) == {"k": 1}

    def test_error_type_bridges_old_handlers(self):
        # Pre-envelope call sites catch PlacementError / ConfigError; the
        # typed corruption error must keep satisfying both.
        assert issubclass(CorruptArtifactError, PlacementError)
        assert issubclass(CorruptArtifactError, ConfigError)


class TestLayoutFiles:
    def test_round_trip_verifies(self, layout, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        assert json.loads(path.read_text())["magic"] == MAGIC_LAYOUT
        assert load_layout(path).pages() == layout.pages()

    def test_bit_flip_detected(self, layout, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        flip_payload_bit(path)
        with pytest.raises(CorruptArtifactError):
            load_layout(path)

    def test_truncation_detected(self, layout, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        path.write_text(path.read_text()[:-30])
        with pytest.raises(CorruptArtifactError):
            load_layout(path)

    def test_legacy_layout_loads_with_warning(self, layout, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text(
            json.dumps(
                {
                    "num_keys": layout.num_keys,
                    "capacity": layout.capacity,
                    "num_base_pages": layout.num_base_pages,
                    "pages": [list(p) for p in layout.pages()],
                }
            )
        )
        with pytest.warns(UncheckedArtifactWarning):
            assert load_layout(path).pages() == layout.pages()


class TestShardedLayoutFiles:
    def test_round_trip_verifies(self, sharded, tmp_path):
        path = tmp_path / "sharded.json"
        save_sharded_layout(sharded, path)
        loaded = load_sharded_layout(path)
        assert loaded.plan.assignment == sharded.plan.assignment
        assert [l.pages() for l in loaded.layouts] == [
            l.pages() for l in sharded.layouts
        ]

    def test_bit_flip_detected(self, sharded, tmp_path):
        path = tmp_path / "sharded.json"
        save_sharded_layout(sharded, path)
        document = json.loads(path.read_text())
        document["payload"]["assignment"][0] ^= 1
        path.write_text(json.dumps(document))
        with pytest.raises(CorruptArtifactError):
            load_sharded_layout(path)

    def test_plain_layout_file_rejected_by_magic(self, layout, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        with pytest.raises(PlacementError):
            load_sharded_layout(path)


class TestIndexBundles:
    def test_round_trip_verifies(self, layout, tmp_path):
        indexes = CsrIndexes.from_layout(layout)
        save_indexes(indexes, tmp_path / "idx")
        meta = json.loads((tmp_path / "idx" / "meta.json").read_text())
        assert meta["version"] == 2
        assert set(meta["checksums"]) == {
            f"{kind}_{part}"
            for kind in ("forward", "invert", "full_forward")
            for part in ("indptr", "indices")
        }
        loaded = load_indexes(tmp_path / "idx")
        np.testing.assert_array_equal(
            loaded.invert.indices, indexes.invert.indices
        )

    def test_flipped_array_byte_detected(self, layout, tmp_path):
        save_indexes(CsrIndexes.from_layout(layout), tmp_path / "idx")
        target = tmp_path / "idx" / "invert_indices.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(CorruptArtifactError, match="integrity"):
            load_indexes(tmp_path / "idx")

    def test_missing_array_file_detected(self, layout, tmp_path):
        save_indexes(CsrIndexes.from_layout(layout), tmp_path / "idx")
        (tmp_path / "idx" / "forward_indptr.npy").unlink()
        with pytest.raises(CorruptArtifactError, match="missing"):
            load_indexes(tmp_path / "idx")

    def test_legacy_meta_loads_with_warning(self, layout, tmp_path):
        save_indexes(CsrIndexes.from_layout(layout), tmp_path / "idx")
        meta_path = tmp_path / "idx" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 1
        del meta["checksums"]
        meta_path.write_text(json.dumps(meta))
        with pytest.warns(UncheckedArtifactWarning):
            load_indexes(tmp_path / "idx")


class TestStoreBundles:
    @pytest.fixture
    def store(self, criteo_small):
        history, _ = criteo_small
        config = MaxEmbedConfig(
            replication_ratio=0.2, shp=ShpConfig(max_iterations=4, seed=0)
        )
        table = (
            np.random.default_rng(0)
            .normal(size=(history.num_keys, 64))
            .astype(np.float32)
        )
        return MaxEmbedStore.build(history, config, table=table)

    def test_bundle_carries_manifest_checksums(self, store, tmp_path):
        bundle = save_store(store, tmp_path / "bundle")
        manifest = json.loads((bundle / "manifest.json").read_text())
        files = manifest["payload"]["files"]
        assert files["table.npy"] == crc32_file(bundle / "table.npy")
        load_store(bundle)  # verifies everything

    def test_corrupt_table_detected(self, store, tmp_path):
        bundle = save_store(store, tmp_path / "bundle")
        blob = bytearray((bundle / "table.npy").read_bytes())
        blob[-3] ^= 0x10
        (bundle / "table.npy").write_bytes(bytes(blob))
        with pytest.raises(CorruptArtifactError):
            load_store(bundle)

    def test_truncated_config_detected(self, store, tmp_path):
        bundle = save_store(store, tmp_path / "bundle")
        config_path = bundle / "config.json"
        config_path.write_text(config_path.read_text()[:-20])
        with pytest.raises(CorruptArtifactError):
            load_store(bundle)

    def test_tampered_config_detected(self, store, tmp_path):
        bundle = save_store(store, tmp_path / "bundle")
        config_path = bundle / "config.json"
        document = json.loads(config_path.read_text())
        document["payload"]["cache_ratio"] = 0.99
        config_path.write_text(json.dumps(document))
        with pytest.raises(CorruptArtifactError):
            load_store(bundle)

    def test_legacy_bundle_loads_with_warning(self, store, tmp_path):
        bundle = save_store(store, tmp_path / "bundle")
        # Strip every envelope, as a pre-checksum build would have
        # written it.
        for name in ("config.json", "layout.json"):
            path = bundle / name
            path.write_text(
                json.dumps(json.loads(path.read_text())["payload"])
            )
        (bundle / "manifest.json").unlink()
        with pytest.warns(UncheckedArtifactWarning):
            loaded = load_store(bundle)
        assert loaded.config == store.config
