"""Device command set vs timing model: batches, gathers, wrappers.

The contract pinned here:

* a batch of :class:`ReadCommand` is *bit-identical* to the same
  ``submit_read`` calls in a loop at the same timestamp — batching
  changes who pays the host-side submit overhead, never the device
  service model;
* a :class:`GatherCommand` occupies an NDP device for media + scan +
  bus time and answers one completion covering all its pages;
* the RAID-0 array stripes both command kinds per member and merges
  gathers at the slowest member's completion;
* the tracing and fault wrappers pass the batched interface through
  (faults inline, one trace row per command).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import DeviceFault, FaultPlan, FaultySsd, SimulatedSsd, StorageError
from repro.errors import DeviceInterfaceError
from repro.ssd import (
    DEVICE_COMMAND_PATHS,
    GatherCommand,
    NdpSsdProfile,
    P5800X,
    P5800X_NDP,
    Raid0Array,
    ReadCommand,
    SsdProfile,
    TracingDevice,
)


def make_device(profile=None, page_size=4096):
    return SimulatedSsd(profile or P5800X, page_size=page_size)


def make_ndp_device(page_size=4096):
    return SimulatedSsd(P5800X_NDP, page_size=page_size)


GATHER = GatherCommand(
    page_ids=(0, 1, 2), wanted_keys=12, candidates=48, payload_bytes=3072
)


class TestCommandVocabulary:
    def test_paths_tuple(self):
        assert DEVICE_COMMAND_PATHS == ("paged", "batched", "ndp")

    def test_read_command_rejects_negative_page(self):
        with pytest.raises(StorageError):
            ReadCommand(-1)

    def test_read_command_is_hashable(self):
        assert ReadCommand(3) == ReadCommand(3)
        assert len({ReadCommand(3), ReadCommand(3), ReadCommand(4)}) == 2

    def test_gather_requires_pages(self):
        with pytest.raises(StorageError, match="at least one page"):
            GatherCommand((), 1, 1, 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_ids": (0, -2), "wanted_keys": 1, "candidates": 1,
             "payload_bytes": 1},
            {"page_ids": (0,), "wanted_keys": -1, "candidates": 1,
             "payload_bytes": 1},
            {"page_ids": (0,), "wanted_keys": 1, "candidates": -1,
             "payload_bytes": 1},
            {"page_ids": (0,), "wanted_keys": 1, "candidates": 1,
             "payload_bytes": -1},
        ],
    )
    def test_gather_rejects_negative_fields(self, kwargs):
        with pytest.raises(StorageError):
            GatherCommand(**kwargs)

    def test_num_pages(self):
        assert GATHER.num_pages == 3


class TestBatchEqualsLoop:
    def test_batch_matches_loop_exactly(self):
        batch_dev, loop_dev = make_device(), make_device()
        pages = [7, 3, 7, 11, 0]
        batched = batch_dev.submit_batch(
            [ReadCommand(p) for p in pages], now_us=10.0
        )
        looped = [loop_dev.submit_read(p, 10.0) for p in pages]
        assert batched == looped
        assert batch_dev.stats.reads == loop_dev.stats.reads
        assert batch_dev.stats.bytes_read == loop_dev.stats.bytes_read
        assert batch_dev.stats.total_latency_us == (
            loop_dev.stats.total_latency_us
        )
        assert list(batch_dev.stats.latencies) == list(
            loop_dev.stats.latencies
        )

    @settings(max_examples=50, deadline=None)
    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=200), min_size=1, max_size=32
        ),
        now=st.floats(min_value=0.0, max_value=1e6),
        latency=st.floats(min_value=0.5, max_value=200.0),
        bandwidth=st.floats(min_value=0.5, max_value=16.0),
    )
    def test_batch_loop_parity_property(self, pages, now, latency, bandwidth):
        profile = SsdProfile(
            "prop", read_latency_us=latency, bandwidth_gb_s=bandwidth,
            queue_depth=64,
        )
        batch_dev = SimulatedSsd(profile)
        loop_dev = SimulatedSsd(profile)
        batched = batch_dev.submit_batch(
            [ReadCommand(p) for p in pages], now
        )
        looped = [loop_dev.submit_read(p, now) for p in pages]
        assert batched == looped
        assert batch_dev.next_completion_time() == (
            loop_dev.next_completion_time()
        )

    def test_batch_respects_queue_depth(self):
        device = make_device(
            SsdProfile("tiny", read_latency_us=5.0, bandwidth_gb_s=7.2,
                       queue_depth=2)
        )
        with pytest.raises(StorageError, match="queue depth"):
            device.submit_batch([ReadCommand(p) for p in range(3)], 0.0)

    def test_unknown_command_rejected(self):
        with pytest.raises(StorageError, match="unknown device command"):
            make_device().submit_batch(["not-a-command"], 0.0)


class TestNdpGatherTiming:
    def test_plain_profile_has_no_gather_engine(self):
        assert not P5800X.supports_gather
        with pytest.raises(StorageError, match="no gather engine"):
            make_device().submit_gather(GATHER, 0.0)

    def test_gather_occupancy_matches_cost_model(self):
        device = make_ndp_device()
        profile = device.profile
        completion = device.submit_gather(GATHER, now_us=100.0)
        media = profile.internal_transfer_time_us(3 * 4096)
        scan = (
            profile.gather_setup_us
            + profile.scan_us_per_candidate * GATHER.candidates
        )
        bus = profile.transfer_time_us(GATHER.payload_bytes)
        expected = 100.0 + profile.read_latency_us + media + scan + bus
        assert completion.completed_at_us == pytest.approx(expected)
        assert completion.pages == 3
        assert completion.page_id == 0

    def test_gather_counts_flash_reads_but_bus_payload(self):
        device = make_ndp_device()
        device.submit_gather(GATHER, 0.0)
        assert device.stats.reads == GATHER.num_pages
        assert device.stats.bytes_read == GATHER.payload_bytes
        assert device.stats.gathers == 1

    def test_back_to_back_gathers_queue_on_occupancy(self):
        device = make_ndp_device()
        first = device.submit_gather(GATHER, 0.0)
        second = device.submit_gather(GATHER, 0.0)
        occupancy = (
            first.completed_at_us - device.profile.read_latency_us
        )
        assert second.completed_at_us == pytest.approx(
            first.completed_at_us + occupancy
        )

    def test_internal_bandwidth_beats_bus_for_amplified_reads(self):
        """Moving pages internally must cost less than over the bus."""
        ndp = P5800X_NDP
        raw = 8 * 4096
        assert ndp.internal_transfer_time_us(raw) < (
            ndp.transfer_time_us(raw)
        )

    def test_from_base_inherits_timing(self):
        derived = NdpSsdProfile.from_base(P5800X)
        assert derived.supports_gather
        assert derived.read_latency_us == P5800X.read_latency_us
        assert derived.bandwidth_gb_s == P5800X.bandwidth_gb_s
        assert derived.queue_depth == P5800X.queue_depth

    def test_ndp_validation(self):
        with pytest.raises(Exception):
            NdpSsdProfile.from_base(P5800X, gather_setup_us=-1.0)
        with pytest.raises(Exception):
            NdpSsdProfile.from_base(P5800X, internal_bandwidth_gb_s=0.0)


class TestScaledQueueDepth:
    def test_scaled_keeps_depth_by_default(self):
        scaled = P5800X.scaled("2x", bandwidth_factor=2.0)
        assert scaled.queue_depth == P5800X.queue_depth
        assert scaled.bandwidth_gb_s == pytest.approx(
            2.0 * P5800X.bandwidth_gb_s
        )

    def test_scaled_queue_depth_override(self):
        scaled = P5800X.scaled("2x", bandwidth_factor=2.0, queue_depth=256)
        assert scaled.queue_depth == 256

    def test_scaled_matches_real_array_depth_when_overridden(self):
        array = Raid0Array(P5800X, members=2)
        standin = P5800X.scaled(
            "2x", bandwidth_factor=2.0, queue_depth=array.queue_depth
        )
        assert standin.queue_depth == 2 * P5800X.queue_depth

    def test_scaled_preserves_ndp_fields(self):
        scaled = P5800X_NDP.scaled("ndp-2x", bandwidth_factor=2.0)
        assert scaled.supports_gather
        assert scaled.gather_setup_us == P5800X_NDP.gather_setup_us


class TestRaidBatch:
    def test_batch_parity_with_loop(self):
        batch_arr = Raid0Array(P5800X, members=2)
        loop_arr = Raid0Array(P5800X, members=2)
        pages = [0, 1, 2, 3, 4, 5, 6, 7]
        batched = batch_arr.submit_batch(
            [ReadCommand(p) for p in pages], 0.0
        )
        looped = [loop_arr.submit_read(p, 0.0) for p in pages]
        assert batched == looped

    def test_gather_splits_by_stripe(self):
        array = Raid0Array(P5800X_NDP, members=2)
        command = GatherCommand(
            page_ids=(0, 1, 2, 3), wanted_keys=16, candidates=64,
            payload_bytes=4096,
        )
        merged = array.submit_batch([command], 0.0)[0]
        assert merged.pages == 4
        stats = array.stats
        # Each member gathered its own two pages.
        assert stats.gathers == 2
        assert stats.reads == 4
        # Candidates/payload shares are conserved exactly.
        assert stats.bytes_read == command.payload_bytes
        # The merged completion is the slowest member's.
        assert merged.completed_at_us == array.drain()

    def test_single_member_gather_is_passthrough(self):
        array = Raid0Array(P5800X_NDP, members=2)
        command = GatherCommand(
            page_ids=(0, 2, 4), wanted_keys=6, candidates=12,
            payload_bytes=1536,
        )
        solo = SimulatedSsd(P5800X_NDP)
        expected = solo.submit_gather(command, 0.0)
        merged = array.submit_gather(command, 0.0)
        assert merged.completed_at_us == expected.completed_at_us
        assert merged.pages == expected.pages


class TestTracingBatch:
    def test_batch_records_one_row_per_command(self):
        traced = TracingDevice(make_device())
        traced.submit_batch([ReadCommand(p) for p in (5, 6, 5)], 0.0)
        assert [r.page_id for r in traced.records] == [5, 6, 5]
        assert traced.page_access_counts()[5] == 2

    def test_gather_records_on_first_page(self):
        traced = TracingDevice(make_ndp_device())
        traced.submit_batch([GATHER], 0.0)
        assert len(traced.records) == 1
        assert traced.records[0].page_id == GATHER.page_ids[0]

    def test_overhead_passthrough(self):
        profile = SsdProfile(
            "oh", read_latency_us=5.0, bandwidth_gb_s=7.2,
            submit_overhead_us=1.5,
        )
        traced = TracingDevice(make_device(profile))
        assert traced.submit_overhead_us == 1.5


class TestFaultyBatch:
    def test_mount_requires_batched_interface(self):
        class LegacyDevice:
            def submit_read(self, page_id, now_us):  # pragma: no cover
                raise AssertionError("never called")

        with pytest.raises(DeviceInterfaceError, match="submit_batch"):
            FaultySsd(LegacyDevice(), FaultPlan())

    def test_noop_plan_batch_is_passthrough(self):
        faulty = FaultySsd(make_device(), FaultPlan())
        plain = make_device()
        pages = [1, 2, 3]
        commands = [ReadCommand(p) for p in pages]
        assert faulty.submit_batch(commands, 0.0) == plain.submit_batch(
            commands, 0.0
        )

    def test_batch_returns_faults_inline(self):
        plan = FaultPlan(seed=3, read_error_rate=0.5)
        faulty = FaultySsd(make_device(), plan)
        results = faulty.submit_batch(
            [ReadCommand(p) for p in range(64)], 0.0
        )
        faults = [r for r in results if isinstance(r, DeviceFault)]
        completions = [r for r in results if not isinstance(r, DeviceFault)]
        assert len(results) == 64
        assert faults, "0.5 error rate over 64 reads must fault"
        assert completions, "and some reads must survive"
        # Successful reads are real completions on the inner device.
        assert faulty.stats.reads == len(completions)

    def test_gather_faults_whole_command(self):
        plan = FaultPlan(seed=1, dead_page_rate=1.0)
        faulty = FaultySsd(make_ndp_device(), plan)
        with pytest.raises(DeviceFault):
            faulty.submit_gather(GATHER, 0.0)
        assert faulty.stats.gathers == 0

    def test_gather_corrupt_poisons_merged_completion(self):
        plan = FaultPlan(seed=2, corrupt_rate=1.0)
        faulty = FaultySsd(make_ndp_device(), plan)
        completion = faulty.submit_gather(GATHER, 0.0)
        assert faulty.is_corrupt(completion)
        # The verdict is consumed.
        assert not faulty.is_corrupt(completion)

    def test_raid_inside_faulty_supports_batches(self):
        faulty = FaultySsd(Raid0Array(P5800X, members=2), FaultPlan())
        results = faulty.submit_batch(
            [ReadCommand(p) for p in range(4)], 0.0
        )
        assert len(results) == 4
        assert all(not isinstance(r, DeviceFault) for r in results)
