"""Tests for workload drift synthesis and the drift experiment."""

import pytest

from repro import Query, QueryTrace, WorkloadError, make_trace
from repro.experiments import clear_caches
from repro.experiments.drift import run as run_drift
from repro.workloads.drift import blend_traces, drifted_trace_for


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestBlendTraces:
    @pytest.fixture
    def pair(self):
        stable = QueryTrace(8, [Query((0, 1))] * 10)
        drifted = QueryTrace(8, [Query((6, 7))] * 4)
        return stable, drifted

    def test_zero_drift_is_stable(self, pair):
        stable, drifted = pair
        blended = blend_traces(stable, drifted, 0.0, seed=0)
        assert [q.keys for q in blended] == [q.keys for q in stable]

    def test_full_drift_is_drifted(self, pair):
        stable, drifted = pair
        blended = blend_traces(stable, drifted, 1.0, seed=0)
        assert all(q.keys == (6, 7) for q in blended)
        assert len(blended) == len(stable)

    def test_partial_drift_mixes(self, pair):
        stable, drifted = pair
        blended = blend_traces(stable, drifted, 0.5, seed=0)
        kinds = {q.keys for q in blended}
        assert kinds == {(0, 1), (6, 7)}

    def test_deterministic(self, pair):
        stable, drifted = pair
        a = blend_traces(stable, drifted, 0.5, seed=7)
        b = blend_traces(stable, drifted, 0.5, seed=7)
        assert [q.keys for q in a] == [q.keys for q in b]

    def test_validation(self, pair):
        stable, drifted = pair
        with pytest.raises(WorkloadError):
            blend_traces(stable, drifted, 1.5)
        with pytest.raises(WorkloadError):
            blend_traces(stable, QueryTrace(9, [Query((0,))]), 0.5)
        with pytest.raises(WorkloadError):
            blend_traces(stable, QueryTrace(8), 0.5)


class TestDriftedTraceFor:
    def test_same_universe_different_structure(self):
        base, _ = make_trace("criteo", scale="small", seed=0)
        drifted = drifted_trace_for("criteo", scale="small", drift_seed=1)
        assert drifted.num_keys == base.num_keys
        assert len(drifted) == len(base)
        assert [q.keys for q in drifted] != [q.keys for q in base]

    def test_rejects_same_seed(self):
        with pytest.raises(WorkloadError):
            drifted_trace_for("criteo", base_seed=1, drift_seed=1)


class TestDriftExperiment:
    def test_edge_erodes_and_rebuild_recovers(self):
        result = run_drift(
            scale="small",
            seed=3,
            drift_levels=(0.0, 1.0),
            max_queries=300,
        )
        fresh, full = result.rows
        assert fresh[3] > 1.0  # MaxEmbed edge on fresh traffic
        assert full[3] < fresh[3]  # edge eroded at full drift
        assert full[4] > full[2]  # rebuild wins on drifted traffic
