"""Tests for repro.workloads.temporal + explicit-arrival open-loop runs."""

import numpy as np
import pytest

from repro import (
    EngineConfig,
    PageLayout,
    Query,
    ServingEngine,
    ServingError,
    WorkloadError,
)
from repro.serving import OpenLoopSimulator
from repro.workloads import (
    burst_rate,
    constant_rate,
    diurnal_rate,
    sample_arrivals,
)


class TestRateProfiles:
    def test_constant(self):
        rate = constant_rate(1000.0)
        assert rate(0.0) == rate(5e5) == 1000.0

    def test_constant_rejects_bad(self):
        with pytest.raises(WorkloadError):
            constant_rate(0.0)

    def test_diurnal_oscillates_around_base(self):
        rate = diurnal_rate(1000.0, swing=0.5, period_us=1e6)
        values = [rate(t) for t in np.linspace(0, 1e6, 100)]
        assert min(values) >= 499.0
        assert max(values) <= 1501.0
        assert max(values) > 1400.0  # actually reaches near the peak

    def test_diurnal_validation(self):
        with pytest.raises(WorkloadError):
            diurnal_rate(0.0)
        with pytest.raises(WorkloadError):
            diurnal_rate(100.0, swing=1.0)
        with pytest.raises(WorkloadError):
            diurnal_rate(100.0, period_us=0.0)

    def test_burst_window(self):
        rate = burst_rate(
            100.0, burst_factor=4.0, burst_start_us=50.0,
            burst_duration_us=100.0,
        )
        assert rate(0.0) == 100.0
        assert rate(75.0) == 400.0
        assert rate(151.0) == 100.0

    def test_burst_validation(self):
        with pytest.raises(WorkloadError):
            burst_rate(0.0)
        with pytest.raises(WorkloadError):
            burst_rate(10.0, burst_factor=0.5)
        with pytest.raises(WorkloadError):
            burst_rate(10.0, burst_duration_us=0.0)


class TestSampleArrivals:
    def test_count_and_monotonicity(self):
        arrivals = sample_arrivals(constant_rate(10_000.0), 100, 10_000.0, 0)
        assert len(arrivals) == 100
        assert arrivals == sorted(arrivals)

    def test_mean_rate_tracks_profile(self):
        arrivals = sample_arrivals(constant_rate(10_000.0), 2000, 10_000.0, 0)
        span_s = (arrivals[-1] - arrivals[0]) * 1e-6
        assert 2000 / span_s == pytest.approx(10_000.0, rel=0.15)

    def test_thinning_concentrates_in_burst(self):
        rate = burst_rate(
            1000.0, burst_factor=10.0, burst_start_us=0.0,
            burst_duration_us=1e5,
        )
        arrivals = sample_arrivals(rate, 400, 10_000.0, seed=1)
        inside = sum(1 for t in arrivals if t < 1e5)
        # The burst window is 10x hotter: most early arrivals land there.
        assert inside > 100

    def test_deterministic(self):
        a = sample_arrivals(constant_rate(5000.0), 50, 5000.0, seed=3)
        b = sample_arrivals(constant_rate(5000.0), 50, 5000.0, seed=3)
        assert a == b

    def test_peak_violation_detected(self):
        with pytest.raises(WorkloadError):
            sample_arrivals(constant_rate(10_000.0), 10, 5000.0, 0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            sample_arrivals(constant_rate(100.0), 0, 100.0)
        with pytest.raises(WorkloadError):
            sample_arrivals(constant_rate(100.0), 10, 0.0)


class TestRunArrivals:
    @pytest.fixture
    def engine(self):
        layout = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
        return ServingEngine(
            layout, EngineConfig(cache_ratio=0.0, threads=2)
        )

    def test_explicit_schedule(self, engine):
        queries = [Query((k % 8,)) for k in range(20)]
        arrivals = [float(i * 100) for i in range(20)]
        report = OpenLoopSimulator(engine, seed=0).run_arrivals(
            queries, arrivals
        )
        assert len(report.results) == 18  # 10% warmup
        assert report.offered_qps == pytest.approx(10_000.0, rel=0.06)

    def test_burst_raises_tail_latency(self):
        def fresh():
            layout = PageLayout(8, 4, [(0, 1, 2, 3), (4, 5, 6, 7)])
            return ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, threads=1)
            )

        queries = [Query((k % 8,)) for k in range(300)]
        flat = sample_arrivals(constant_rate(40_000.0), 300, 40_000.0, 0)
        bursty_rate = burst_rate(
            30_000.0, burst_factor=8.0, burst_start_us=0.0,
            burst_duration_us=2e3,
        )
        bursty = sample_arrivals(bursty_rate, 300, 240_000.0, 0)
        flat_report = OpenLoopSimulator(fresh(), seed=0).run_arrivals(
            queries, flat
        )
        burst_report = OpenLoopSimulator(fresh(), seed=0).run_arrivals(
            queries, bursty
        )
        assert burst_report.percentile_latency_us(
            99
        ) > flat_report.percentile_latency_us(99)

    def test_validation(self, engine):
        simulator = OpenLoopSimulator(engine, seed=0)
        queries = [Query((0,)), Query((1,))]
        with pytest.raises(ServingError):
            simulator.run_arrivals(queries, [0.0])  # length mismatch
        with pytest.raises(ServingError):
            simulator.run_arrivals(queries, [5.0, 1.0])  # not sorted
        with pytest.raises(ServingError):
            simulator.run_arrivals([], [])
