"""Property-based tests for the extension modules.

Invariants: batching never reads more pages than unbatched serving;
incremental replication preserves base pages and respects budgets; the
benefit strategy's layouts stay within budget on arbitrary traces; cache
policies never exceed capacity under arbitrary op streams.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import (
    EngineConfig,
    PageLayout,
    Query,
    QueryTrace,
    ServingEngine,
    ShpConfig,
    ShpPartitioner,
)
from repro.cache.policies import CACHE_POLICIES, make_cache
from repro.hypergraph import build_weighted_hypergraph
from repro.replication import GreedyBenefitStrategy, IncrementalReplicator
from repro.serving import BatchServer


@st.composite
def traces(draw, max_keys=24, max_queries=12):
    n = draw(st.integers(min_value=4, max_value=max_keys))
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    queries = []
    for _ in range(num_queries):
        size = draw(st.integers(min_value=1, max_value=min(6, n)))
        keys = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        queries.append(Query(tuple(keys)))
    return QueryTrace(n, queries)


def sequential_layout(num_keys: int, capacity: int = 4) -> PageLayout:
    pages = [
        tuple(range(start, min(start + capacity, num_keys)))
        for start in range(0, num_keys, capacity)
    ]
    return PageLayout(num_keys, capacity, pages)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(trace=traces(), batch_size=st.integers(min_value=1, max_value=8))
def test_batching_never_reads_more_pages(trace, batch_size):
    layout = sequential_layout(trace.num_keys)
    unbatched = ServingEngine(
        layout, EngineConfig(cache_ratio=0.0, threads=1)
    )
    unbatched_report = unbatched.serve_trace(list(trace))
    batched_engine = ServingEngine(
        layout, EngineConfig(cache_ratio=0.0, threads=1)
    )
    results = BatchServer(batched_engine).serve_stream(
        list(trace), batch_size
    )
    batched_pages = sum(r.pages_read for r in results)
    assert batched_pages <= unbatched_report.total_pages_read


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(trace=traces(), budget=st.integers(min_value=0, max_value=5))
def test_incremental_extend_invariants(trace, budget):
    layout = sequential_layout(trace.num_keys)
    refreshed = IncrementalReplicator().extend(layout, trace, budget)
    # Base pages untouched, budget respected, layout valid by construction.
    assert refreshed.pages()[: layout.num_pages] == layout.pages()
    assert refreshed.num_pages - layout.num_pages <= budget
    assert refreshed.num_base_pages == layout.num_base_pages


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    trace=traces(),
    ratio=st.sampled_from([0.0, 0.25, 0.75]),
)
def test_benefit_strategy_budget_property(trace, ratio):
    graph = build_weighted_hypergraph(trace)
    strategy = GreedyBenefitStrategy(
        ShpPartitioner(ShpConfig(max_iterations=2, kl_passes=1, seed=0))
    )
    capacity = 4
    layout = strategy.build_layout(graph, capacity, ratio)
    budget = strategy.replica_page_budget(graph.num_vertices, capacity, ratio)
    assert layout.num_replica_pages <= budget
    assert min(layout.replica_counts()) >= 1


@settings(max_examples=40, deadline=None)
@given(
    policy=st.sampled_from(sorted(CACHE_POLICIES)),
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["get", "put"]),
            st.integers(min_value=0, max_value=10),
        ),
        max_size=50,
    ),
)
def test_every_policy_bounded_and_consistent(policy, capacity, ops):
    cache = make_cache(policy, capacity)
    shadow = {}
    for op, key in ops:
        if op == "put":
            cache.put(key, key * 2)
            shadow[key] = key * 2
        else:
            value = cache.get(key)
            # A hit must return the last written value.
            if value is not None:
                assert value == shadow.get(key)
        assert len(cache) <= capacity
