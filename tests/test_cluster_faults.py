"""Cluster fault domains: deadlines, breakers, partial gather, swaps, close."""

import dataclasses

import pytest

from repro import (
    BreakerConfig,
    EngineConfig,
    MaxEmbedConfig,
    PageLayout,
    Query,
    QueryTrace,
    ServingError,
    ShardUnavailableError,
    ShpConfig,
    build_sharded_layout,
)
from repro.cluster import ClusterEngine
from repro.faults.breaker import OPEN


@pytest.fixture
def two_community_trace() -> QueryTrace:
    queries = (
        [Query((0, 1, 2, 3))] * 6
        + [Query((4, 5, 6, 7))] * 4
        + [Query((0, 1, 4, 5))] * 4
        + [Query((2, 3, 6, 7))] * 2
    )
    return QueryTrace(8, queries)


def make_cluster(trace, **engine_kwargs) -> ClusterEngine:
    config = MaxEmbedConfig(
        num_shards=2,
        shard_strategy="modulo",
        shp=ShpConfig(max_iterations=4),
    )
    sharded = build_sharded_layout(trace, config)
    return ClusterEngine(
        sharded, EngineConfig(cache_ratio=0.0, **engine_kwargs)
    )


def slow_down(engine, delay_us: float) -> None:
    """Stretch every result of one shard engine by ``delay_us``."""
    original = engine.serve_query

    def wrapper(query, start_us=0.0):
        result = original(query, start_us)
        return dataclasses.replace(
            result, finish_us=result.finish_us + delay_us
        )

    engine.serve_query = wrapper


def break_engine(engine, exc: Exception) -> None:
    """Make one shard engine raise on every query."""

    def raiser(query, start_us=0.0):
        raise exc

    engine.serve_query = raiser


class TestShardDeadlines:
    def test_slow_shard_times_out_partial_gather(self, two_community_trace):
        cluster = make_cluster(two_community_trace, shard_deadline_us=5_000.0)
        slow_down(cluster.engines[0], 50_000.0)
        report = cluster.serve_trace(two_community_trace)
        # Shard 0 missed every deadline; shard 1 kept serving.
        assert report.shard_timeouts[0] == report.shard_queries[0] > 0
        assert report.shard_timeouts[1] == 0
        assert report.shard_coverage()[0] == 0.0
        assert report.shard_coverage()[1] == 1.0
        assert 0.0 < report.coverage() < 1.0
        assert report.report.total_missing_keys == sum(
            report.shard_missing_keys
        )

    def test_timed_out_fragment_charges_exactly_the_deadline(
        self, two_community_trace
    ):
        deadline = 5_000.0
        cluster = make_cluster(two_community_trace, shard_deadline_us=deadline)
        slow_down(cluster.engines[0], 50_000.0)
        slow_down(cluster.engines[1], 50_000.0)
        result = cluster.serve_query(Query((0, 1, 4, 5)), start_us=100.0)
        assert result.missing_keys == result.requested_keys == 4
        assert result.ssd_keys == 0
        assert result.finish_us == 100.0 + deadline

    def test_fast_shards_unaffected_by_deadline(self, two_community_trace):
        strict = make_cluster(two_community_trace, shard_deadline_us=1e9)
        plain = make_cluster(two_community_trace)
        assert strict.serve_trace(
            two_community_trace
        ).report == plain.serve_trace(two_community_trace).report


class TestCircuitBreakers:
    def test_breaker_trips_and_skips_the_failing_shard(
        self, two_community_trace
    ):
        cluster = make_cluster(
            two_community_trace,
            shard_deadline_us=5_000.0,
            breaker=BreakerConfig(
                failure_threshold=2, recovery_timeout_us=1e12
            ),
        )
        assert cluster.resilient
        slow_down(cluster.engines[0], 50_000.0)
        report = cluster.serve_trace(two_community_trace)
        # Two timeouts trip the breaker; later queries skip at dispatch.
        assert report.shard_timeouts[0] == 2
        assert report.shard_skipped[0] > 0
        assert report.shard_skipped[1] == 0
        assert report.breaker_states[0] == OPEN
        assert report.total_breaker_transitions() == 1
        transitions = report.breaker_transitions[0]
        assert [(t.from_state, t.to_state) for t in transitions] == [
            ("closed", "open")
        ]

    def test_skipped_fragment_has_zero_latency(self, two_community_trace):
        cluster = make_cluster(
            two_community_trace,
            breaker=BreakerConfig(failure_threshold=1, recovery_timeout_us=1e12),
        )
        break_engine(cluster.engines[0], RuntimeError("shard died"))
        # First query records the failure and opens the breaker...
        first = cluster.serve_query(Query((0, 2)), start_us=0.0)
        assert first.missing_keys == 2
        # ...subsequent queries to that shard are rejected instantly.
        second = cluster.serve_query(Query((0, 2)), start_us=1_000.0)
        assert second.missing_keys == 2
        assert second.finish_us == 1_000.0

    def test_worker_exception_degrades_in_resilient_mode(
        self, two_community_trace
    ):
        cluster = make_cluster(
            two_community_trace,
            breaker=BreakerConfig(failure_threshold=3),
        )
        break_engine(cluster.engines[1], RuntimeError("boom"))
        report = cluster.serve_trace(two_community_trace)  # must not raise
        assert report.shard_errors[1] > 0
        assert report.shard_errors[0] == 0
        assert report.shard_coverage()[1] == 0.0
        # After the breaker trips, later fragments are skipped instead of
        # errored; both count as shard failures.
        assert report.total_shard_failures() == (
            report.shard_errors[1] + report.shard_skipped[1]
        )

    def test_recovered_shard_closes_breaker_again(self, two_community_trace):
        cluster = make_cluster(
            two_community_trace,
            shard_deadline_us=5_000.0,
            breaker=BreakerConfig(
                failure_threshold=1, recovery_timeout_us=10_000.0
            ),
        )
        original = cluster.engines[0].serve_query
        slow_down(cluster.engines[0], 50_000.0)
        cluster.serve_query(Query((0, 2)), start_us=0.0)  # trips open
        assert cluster.breakers[0].state == OPEN
        cluster.engines[0].serve_query = original  # the shard heals
        # Past the recovery timeout the probe goes through and succeeds.
        probe = cluster.serve_query(Query((0, 2)), start_us=20_000.0)
        assert probe.missing_keys == 0
        assert cluster.breakers[0].state == "closed"


class TestStrictMode:
    def test_worker_exception_names_the_failing_shard(
        self, two_community_trace
    ):
        cluster = make_cluster(two_community_trace)
        assert not cluster.resilient
        break_engine(cluster.engines[1], RuntimeError("boom"))
        with pytest.raises(ShardUnavailableError) as info:
            cluster.serve_query(Query((0, 1, 4, 5)))
        assert info.value.shard == 1
        assert "shard 1" in str(info.value)

    def test_serial_scatter_path_also_wraps(self, two_community_trace):
        cluster = make_cluster(two_community_trace, scatter_workers=0)
        assert cluster._pool is None
        break_engine(cluster.engines[0], ValueError("bad"))
        with pytest.raises(ShardUnavailableError) as info:
            cluster.serve_query(Query((0, 1, 4, 5)))
        assert info.value.shard == 0


class TestSwapRollback:
    def test_wrong_key_count_rejected_before_touching_shard(
        self, two_community_trace
    ):
        cluster = make_cluster(two_community_trace)
        before = cluster.engines[0]
        bogus = PageLayout(2, 4, [(0, 1)])
        with pytest.raises(ServingError):
            cluster.swap_shard(0, bogus)
        assert cluster.engines[0] is before

    def test_engine_build_failure_leaves_old_layout_serving(
        self, two_community_trace
    ):
        cluster = make_cluster(two_community_trace)
        before = cluster.engines[0]
        owned = len(cluster.plan.shard_keys(0))
        # Right key count, but the declared capacity overflows the spec's
        # slot budget, so ServingEngine construction itself fails.
        oversized = PageLayout(
            owned,
            cluster.config.spec.slots_per_page + 1,
            [tuple(range(owned))],
        )
        with pytest.raises(ServingError):
            cluster.swap_shard(0, oversized)
        assert cluster.engines[0] is before
        # The cluster still serves through the original engine.
        assert cluster.serve_query(Query((0, 2))).missing_keys == 0

    def test_successful_swap_resets_breaker(self, two_community_trace):
        cluster = make_cluster(
            two_community_trace,
            breaker=BreakerConfig(failure_threshold=1, recovery_timeout_us=1e12),
        )
        break_engine(cluster.engines[0], RuntimeError("dying"))
        cluster.serve_query(Query((0, 2)))
        assert cluster.breakers[0].state == OPEN
        replacement_layout = cluster.sharded.layouts[0]
        cluster.swap_shard(0, replacement_layout)
        assert cluster.breakers[0].state == "closed"
        assert cluster.serve_query(Query((0, 2))).missing_keys == 0

    def test_out_of_range_shard_rejected(self, two_community_trace):
        cluster = make_cluster(two_community_trace)
        with pytest.raises(ServingError):
            cluster.swap_shard(9, cluster.sharded.layouts[0])


class TestClose:
    def test_close_is_idempotent(self, two_community_trace):
        cluster = make_cluster(two_community_trace)
        cluster.close()
        cluster.close()  # second close is a no-op, not an error

    def test_serving_after_close_falls_back_to_serial(
        self, two_community_trace
    ):
        cluster = make_cluster(two_community_trace)
        fanout_query = Query((0, 1, 4, 5))
        before = cluster.serve_query(fanout_query)
        cluster.close()
        after = cluster.serve_query(fanout_query, start_us=before.finish_us)
        assert after.missing_keys == 0
        assert after.requested_keys == before.requested_keys

    def test_close_during_serve_completes_the_query(self, two_community_trace):
        # Simulate close() winning the submit race: the pool is torn down
        # between dispatch and gather, and the query must still complete
        # through the serial fallback.
        cluster = make_cluster(two_community_trace)
        original = cluster.engines[0].serve_query

        def closing_serve(query, start_us=0.0):
            cluster.close()
            return original(query, start_us)

        cluster.engines[0].serve_query = closing_serve
        result = cluster.serve_query(Query((0, 1, 4, 5)))
        assert result.missing_keys == 0
        assert result.requested_keys == 4
