"""Tests for the canonical DLRM: embedding bags + dot interactions."""

import numpy as np
import pytest

from repro import ConfigError, MaxEmbedConfig, ShpConfig
from repro.core import MaxEmbedStore
from repro.dlrm import (
    EmbeddingBagCollection,
    InteractionDlrmModel,
    TableSet,
    dot_interactions,
)


@pytest.fixture(scope="module")
def setup(request):
    history, _ = request.getfixturevalue("criteo_small")
    n = history.num_keys
    tables = TableSet.from_cardinalities(
        {"user": n // 3, "item": n // 3, "ctx": n - 2 * (n // 3)}
    )
    table = (
        np.random.default_rng(0).normal(size=(n, 64)).astype(np.float32)
    )
    store = MaxEmbedStore.build(
        history,
        MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
        table=table,
    )
    return store, tables, table


class TestDotInteractions:
    def test_shape(self):
        feats = np.random.default_rng(0).normal(size=(2, 4, 8))
        out = dot_interactions(feats)
        assert out.shape == (2, 6)  # C(4, 2)

    def test_values_are_pairwise_dots(self):
        a = np.array([[[1.0, 0.0], [0.0, 2.0], [3.0, 3.0]]])
        out = dot_interactions(a)
        # pairs: (0,1)=0, (0,2)=3, (1,2)=6
        assert np.allclose(out, [[0.0, 3.0, 6.0]])

    def test_rejects_wrong_rank(self):
        with pytest.raises(ConfigError):
            dot_interactions(np.zeros((2, 3)))


class TestEmbeddingBagCollection:
    def test_sum_pooling_matches_table(self, setup):
        store, tables, table = setup
        bags = EmbeddingBagCollection(store, tables, mode="sum")
        pooled = bags.forward_one({"user": [1, 2], "item": [0]})
        user_keys = [tables.global_key("user", i) for i in (1, 2)]
        assert np.allclose(
            pooled[0], table[user_keys].sum(axis=0), atol=1e-4
        )
        # ctx table absent: zero vector.
        assert np.allclose(pooled[2], 0.0)

    def test_mean_pooling(self, setup):
        store, tables, table = setup
        bags = EmbeddingBagCollection(store, tables, mode="mean")
        pooled = bags.forward_one({"user": [1, 3]})
        user_keys = [tables.global_key("user", i) for i in (1, 3)]
        assert np.allclose(
            pooled[0], table[user_keys].mean(axis=0), atol=1e-4
        )

    def test_duplicate_ids_pooled_once(self, setup):
        store, tables, table = setup
        bags = EmbeddingBagCollection(store, tables)
        a = bags.forward_one({"user": [2, 2]})
        b = bags.forward_one({"user": [2]})
        assert np.allclose(a, b)

    def test_batch_shape(self, setup):
        store, tables, _ = setup
        bags = EmbeddingBagCollection(store, tables)
        out = bags.forward([{"user": [0]}, {"item": [1, 2]}])
        assert out.shape == (2, 3, 64)

    def test_validation(self, setup):
        store, tables, _ = setup
        with pytest.raises(ConfigError):
            EmbeddingBagCollection(store, tables, mode="max")
        small = TableSet.from_cardinalities({"only": 4})
        with pytest.raises(ConfigError):
            EmbeddingBagCollection(store, small)
        bags = EmbeddingBagCollection(store, tables)
        with pytest.raises(ConfigError):
            bags.forward_one({"user": []})
        with pytest.raises(ConfigError):
            bags.forward([])


class TestInteractionDlrm:
    def test_predict_shapes_and_range(self, setup):
        store, tables, _ = setup
        bags = EmbeddingBagCollection(store, tables)
        model = InteractionDlrmModel(bags, dense_dim=8, seed=0)
        dense = np.random.default_rng(1).normal(size=(3, 8))
        sparse = [
            {"user": [0, 1], "item": [2]},
            {"item": [3, 4], "ctx": [0]},
            {"user": [5]},
        ]
        probs = model.predict(dense, sparse)
        assert probs.shape == (3,)
        assert np.all((probs > 0) & (probs < 1))

    def test_predict_one(self, setup):
        store, tables, _ = setup
        bags = EmbeddingBagCollection(store, tables)
        model = InteractionDlrmModel(bags, dense_dim=4, seed=0)
        prob = model.predict_one(np.ones(4), {"user": [1]})
        assert 0.0 < prob < 1.0

    def test_deterministic(self, setup):
        store, tables, _ = setup
        bags = EmbeddingBagCollection(store, tables)
        model = InteractionDlrmModel(bags, dense_dim=4, seed=0)
        dense = np.ones((1, 4))
        sparse = [{"user": [1], "item": [1]}]
        assert np.allclose(
            model.predict(dense, sparse), model.predict(dense, sparse)
        )

    def test_interactions_affect_output(self, setup):
        # Same dense input, different sparse ids => different score.
        store, tables, _ = setup
        bags = EmbeddingBagCollection(store, tables)
        model = InteractionDlrmModel(bags, dense_dim=4, seed=0)
        dense = np.ones(4)
        a = model.predict_one(dense, {"user": [1]})
        b = model.predict_one(dense, {"user": [7]})
        assert a != pytest.approx(b, abs=1e-9)

    def test_validation(self, setup):
        store, tables, _ = setup
        bags = EmbeddingBagCollection(store, tables)
        with pytest.raises(ConfigError):
            InteractionDlrmModel(bags, dense_dim=0)
        model = InteractionDlrmModel(bags, dense_dim=4, seed=0)
        with pytest.raises(ConfigError):
            model.predict(np.ones((2, 4)), [{"user": [1]}])
