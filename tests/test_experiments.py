"""Tests for repro.experiments: report container, runner, and each artifact.

Experiments run at 'small' scale with trimmed query counts, asserting the
paper's qualitative shapes rather than absolute numbers.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    clear_caches,
    run_all,
    run_experiment,
)
from repro.experiments import (
    fig03_motivation,
    fig08_effective_bandwidth,
    fig09_valid_embeddings,
    fig10_throughput,
    fig11_latency,
    fig12_cache_ratio,
    fig13_no_cache,
    fig14_strategies,
    fig15_time_breakdown,
    fig16_index_shrinking,
    fig17_sensitivity,
    table1_partition_time,
    table2_tco,
)
from repro.experiments.table2_tco import TcoModel

SMALL = dict(scale="small", seed=3)


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestReport:
    def test_render_contains_rows(self):
        result = ExperimentResult(
            "figX", "demo", ["a", "b"], [[1, 2], [3, 4]], notes="shape"
        )
        text = result.render()
        assert "figX" in text
        assert "shape" in text
        assert "3" in text

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]

    def test_column_unknown_raises(self):
        result = ExperimentResult("x", "t", ["a"], [[1]])
        with pytest.raises(ValueError):
            result.column("zzz")

    def test_to_markdown(self):
        result = ExperimentResult(
            "figX", "demo", ["a", "b"], [[1, 2]], notes="shape text"
        )
        md = result.to_markdown()
        assert md.startswith("### figX")
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md
        assert "*Shape:* shape text" in md


class TestRunner:
    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_kwarg_filtering(self):
        # table2 takes no `scale`; the runner must drop it silently.
        result = run_experiment("table2", scale="small")
        assert result.exp_id == "table2"

    def test_run_all_subset(self, capsys):
        results = run_all(only=["table2"], verbose=True)
        assert len(results) == 1
        assert "table2" in capsys.readouterr().out


class TestFig3:
    def test_shp_beats_vanilla_everywhere(self):
        result = fig03_motivation.run(
            datasets=("criteo", "amazon_m2"), **SMALL
        )
        for row in result.rows:
            assert row[2] > row[1], f"SHP lost on {row[0]}"


class TestFig8:
    def test_bandwidth_grows_with_ratio(self):
        result = fig08_effective_bandwidth.run(
            datasets=("criteo",), ratios=(0.1, 0.8), **SMALL
        )
        row = result.rows[0]
        shp, r10, r80 = row[1], row[2], row[3]
        assert r10 > shp
        assert r80 > r10


class TestFig9:
    def test_replication_reduces_single_valid_reads(self):
        result = fig09_valid_embeddings.run(dataset="criteo", **SMALL)
        shp_row = result.rows[0]
        me_row = result.rows[1]
        assert me_row[1] > shp_row[1]  # mean valid per read rises
        assert me_row[2] < shp_row[2]  # CDF at 1 shifts down


class TestFig10:
    def test_throughput_improves(self):
        result = fig10_throughput.run(
            datasets=("criteo",), ratios=(0.8,), max_queries=150, **SMALL
        )
        assert result.rows[0][2] > 1.0


class TestFig11:
    def test_latency_drops(self):
        result = fig11_latency.run(
            datasets=("criteo",), ratios=(0.8,), max_queries=150, **SMALL
        )
        assert result.rows[0][2] < 1.0


class TestFig12:
    def test_maxembed_beats_shp_at_every_cache_ratio(self):
        result = fig12_cache_ratio.run(
            datasets=("criteo",),
            ratios=(0.8,),
            cache_ratios=(0.02, 0.2),
            max_queries=150,
            **SMALL,
        )
        rows = {(row[1], row[2]): row for row in result.rows}
        shp = rows[("shp", "lru")]
        me = rows[("me_r80", "lru")]
        assert me[3] > shp[3]
        assert me[4] > shp[4]
        # The hybrid tier gets the same DRAM budget; it must not trail
        # the reactive baseline by more than noise at either budget.
        hybrid = rows[("me_r80", "hybrid")]
        assert hybrid[3] >= me[3] * 0.9
        assert hybrid[4] >= me[4] * 0.9


class TestFig13:
    def test_cacheless_gains_and_dram_reference(self):
        result = fig13_no_cache.run(
            datasets=("criteo",),
            ratios=(0.0, 0.8),
            max_queries=150,
            **SMALL,
        )
        row = result.rows[0]
        r0, r80, pinned, dram = row[1], row[2], row[3], row[4]
        assert r80 > r0
        assert dram > r80  # pure DRAM dominates any SSD configuration
        # A small pinned tier lifts the cacheless engine, and stays
        # below the all-DRAM ceiling.
        assert pinned >= r80
        assert pinned < dram


class TestFig14:
    def test_me_beats_rpp(self):
        result = fig14_strategies.run(
            datasets=("alibaba_ifashion",), ratios=(0.4,), **SMALL
        )
        values = {row[1]: row[2] for row in result.rows}
        assert values["me"] >= values["rpp"]
        assert values["me"] > 1.0


class TestFig15:
    def test_optimizations_reduce_latency(self):
        result = fig15_time_breakdown.run(max_queries=120, **SMALL)
        raw, pipe, limited = (row[2] for row in result.rows)
        assert raw == 1.0
        assert pipe < raw
        # The index limit mostly trades bandwidth for selection CPU; at
        # small scale its latency effect can be within noise of +pipeline.
        assert limited <= pipe * 1.05


class TestFig16:
    def test_shrinking_retains_most_bandwidth(self):
        result = fig16_index_shrinking.run(
            ratios=(0.2, 0.8), limits=(None, 10, 5), **SMALL
        )
        for row in result.rows[1:]:
            for cell in row[1:]:
                assert cell >= 0.9


class TestFig17:
    def test_dimensions_monotone_in_ratio(self):
        result = fig17_sensitivity.run_dimensions(
            dims=(32, 128), ratios=(0.0, 0.75), **SMALL
        )
        for row in result.rows:
            assert row[2] > row[1]

    def test_larger_dim_serves_fewer_embeddings_per_read(self):
        # The capacity argument behind the paper's Fig 17a: fewer slots
        # per page (d = 32 → 8) means fewer valid embeddings per read.
        result = fig17_sensitivity.run_dimensions(
            dims=(32, 128), ratios=(0.0,), **SMALL
        )
        # Convert MB/s back to valid-per-read: fraction × page / emb_bytes.
        mb32, mb128 = result.rows[0][1], result.rows[1][1]
        valid32 = mb32 / 7200 * 4096 / 128
        valid128 = mb128 / 7200 * 4096 / 512
        assert valid32 > valid128

    def test_ssd_types_preserve_ordering(self):
        result = fig17_sensitivity.run_ssd_types(**SMALL)
        for row in result.rows:
            vanilla, shp, me = row[1], row[2], row[3]
            assert vanilla < shp < me
        # RAID0 row should dominate single P5800X row in absolute MB/s.
        by_name = {row[0]: row for row in result.rows}
        assert by_name["RAID0"][3] > by_name["P5800X"][3]


class TestClusterScaling:
    def test_throughput_scales_with_shards(self):
        from repro.experiments import fig_cluster_scaling

        result = fig_cluster_scaling.run(
            dataset="criteo",
            shard_counts=(1, 4),
            max_queries=150,
            **SMALL,
        )
        assert len(result.rows) == 6  # 3 strategies x 2 shard counts
        for strategy in ("modulo", "frequency", "cooccurrence"):
            rows = [r for r in result.rows if r[0] == strategy]
            one, four = rows[0], rows[1]
            assert four[2] > one[2], f"{strategy} did not scale"
            assert four[5] >= 1.0  # imbalance reported
        assert "cluster-scaling" in str(result.render())

    def test_registered_in_runner(self):
        from repro.experiments.runner import ALL_EXPERIMENTS

        assert "cluster-scaling" in ALL_EXPERIMENTS


class TestTable1:
    def test_measures_all_cells(self):
        result = table1_partition_time.run(
            datasets=("criteo",), dims=(64, 32), **SMALL
        )
        assert len(result.rows) == 2  # one row per offline path
        assert [row[1] for row in result.rows] == ["reference", "fast"]
        for row in result.rows:
            assert row[0] == "criteo"
            assert len(row) == 4
            assert all(cell >= 0 for cell in row[2:])

    def test_single_path(self):
        result = table1_partition_time.run(
            datasets=("criteo",), dims=(64,), paths=("fast",), **SMALL
        )
        assert len(result.rows) == 1
        assert result.rows[0][1] == "fast"


class TestTable2:
    def test_paper_arithmetic(self):
        result = table2_tco.run(performance_factor=1.16)
        rows = {row[0]: row for row in result.rows}
        # Paper's Table 2: $1,869.25 baseline on P5800X; 1.04x and 1.12x
        # performance/cost.
        assert rows["total_cost_p5800x_$"][1] == pytest.approx(
            1869.25, abs=1.0
        )
        assert rows["perf_per_cost_p5800x"][2] == pytest.approx(1.04, abs=0.02)
        assert rows["perf_per_cost_pm1735"][2] == pytest.approx(1.12, abs=0.02)

    def test_custom_model(self):
        model = TcoModel(table_gb=100, replication_ratio=0.5)
        result = table2_tco.run(performance_factor=1.1, model=model)
        assert result.rows

    def test_rejects_bad_factor(self):
        with pytest.raises(ExperimentError):
            table2_tco.run(performance_factor=0)

    def test_model_helpers(self):
        model = TcoModel()
        assert model.replicated_table_gb() == pytest.approx(405.0)
        assert model.storage_cost(800, 800, 1000) == 1000
        assert model.storage_cost(801, 800, 1000) == 2000
        with pytest.raises(ExperimentError):
            model.storage_cost(0, 800, 1000)
