"""Tests for the ablation experiments and an exact-optimality check.

The optimality check compares the one-pass and greedy selectors against a
brute-force minimal set cover on small instances — quantifying how close
the paper's heuristics are to the NP-hard optimum they approximate.
"""

from itertools import combinations

import pytest

from repro import PageLayout
from repro.experiments import ablations, clear_caches
from repro.placement import ForwardIndex, InvertIndex
from repro.serving.selection import GreedySetCoverSelector, OnePassSelector

SMALL = dict(scale="small", seed=3)


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestAblationExperiments:
    def test_scoring_connectivity_wins(self):
        result = ablations.run_scoring(**SMALL)
        by_name = {row[0]: row[1] for row in result.rows}
        assert by_name["connectivity"] >= by_name["hotness"] * 0.98

    def test_home_exclusion_helps(self):
        result = ablations.run_home_cluster_exclusion(**SMALL)
        by_name = {row[0]: row[1] for row in result.rows}
        assert by_name["True"] >= by_name["False"] * 0.98

    def test_selector_cost_gap(self):
        result = ablations.run_selector_cost(**SMALL)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["onepass"][2] < by_name["greedy"][2]
        assert by_name["onepass"][1] <= by_name["greedy"][1] * 1.2

    def test_partitioner_refinement_ladder(self):
        result = ablations.run_partitioner_refinement(**SMALL)
        by_name = {row[0]: row[1] for row in result.rows}
        assert by_name["shp_full"] > by_name["random"]


def minimal_cover_size(pages, keys):
    """Brute-force smallest number of pages covering ``keys``."""
    wanted = set(keys)
    candidate_ids = [
        i for i, page in enumerate(pages) if wanted & set(page)
    ]
    for size in range(1, len(candidate_ids) + 1):
        for combo in combinations(candidate_ids, size):
            covered = set()
            for page_id in combo:
                covered.update(pages[page_id])
            if wanted <= covered:
                return size
    raise AssertionError("keys cannot be covered at all")


class TestNearOptimality:
    """One-pass vs brute-force optimum on enumerable instances."""

    @pytest.fixture
    def replicated(self):
        pages = [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (0, 4, 8),
            (1, 5, 9),
            (2, 6, 10),
        ]
        layout = PageLayout(12, 4, pages, num_base_pages=3)
        return layout, pages

    @pytest.mark.parametrize(
        "keys",
        [
            (0, 4, 8),          # one replica page is optimal
            (0, 1, 4, 5),       # two pages needed
            (0, 1, 2, 3),       # home page alone
            (3, 7, 11),         # unreplicated keys: three pages
            (0, 5, 10),         # mixed
            (1, 9, 2, 6),
        ],
    )
    def test_selectors_within_one_of_optimal(self, replicated, keys):
        layout, pages = replicated
        forward = ForwardIndex.from_layout(layout)
        invert = InvertIndex.from_layout(layout)
        optimal = minimal_cover_size(pages, keys)
        for selector in (
            GreedySetCoverSelector(forward, invert),
            OnePassSelector(forward, invert),
        ):
            outcome = selector.select(list(keys))
            assert len(outcome.steps) <= optimal + 1
            assert outcome.covered_keys() >= set(keys)

    def test_onepass_finds_exact_optimum_on_replica_hit(self, replicated):
        layout, pages = replicated
        forward = ForwardIndex.from_layout(layout)
        invert = InvertIndex.from_layout(layout)
        outcome = OnePassSelector(forward, invert).select([0, 4, 8])
        assert outcome.pages == [3]
