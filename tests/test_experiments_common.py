"""Tests for repro.experiments.common: caches, engine helper, serve_live."""

import pytest

from repro.experiments import clear_caches
from repro.experiments.common import (
    DEFAULT_DATASETS,
    get_split_trace,
    layout_for,
    make_engine,
    normalize,
    serve_live,
)


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestTraceCache:
    def test_split_halves_share_universe(self):
        history, live = get_split_trace("criteo", "small", seed=1)
        assert history.num_keys == live.num_keys
        assert abs(len(history) - len(live)) <= 1

    def test_memoized_identity(self):
        a = get_split_trace("criteo", "small", seed=1)
        b = get_split_trace("criteo", "small", seed=1)
        assert a[0] is b[0]

    def test_different_seeds_not_shared(self):
        a = get_split_trace("criteo", "small", seed=1)
        b = get_split_trace("criteo", "small", seed=2)
        assert a[0] is not b[0]

    def test_default_datasets_are_the_paper_five(self):
        assert set(DEFAULT_DATASETS) == {
            "alibaba_ifashion",
            "amazon_m2",
            "avazu",
            "criteo",
            "criteo_tb",
        }


class TestLayoutCache:
    def test_memoized_identity(self):
        a = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        b = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        assert a is b

    def test_distinct_configs_distinct_layouts(self):
        a = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        b = layout_for("criteo", "maxembed", 0.4, scale="small", seed=1)
        assert a is not b
        assert b.num_pages > a.num_pages

    def test_clear_caches_resets(self):
        a = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        clear_caches()
        b = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        assert a is not b

    def test_partitioner_variant_cached_separately(self):
        a = layout_for(
            "criteo", "none", 0.0, scale="small", seed=1, partitioner="shp"
        )
        b = layout_for(
            "criteo",
            "none",
            0.0,
            scale="small",
            seed=1,
            partitioner="vanilla",
        )
        assert a is not b


class TestMakeEngineAndServe:
    def test_engine_defaults(self):
        layout = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        engine = make_engine(layout)
        assert engine.config.cache_ratio == 0.10
        assert engine.config.selector == "onepass"

    def test_serve_live_reports(self):
        layout = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        engine = make_engine(layout, cache_ratio=0.1)
        report = serve_live(
            engine, "criteo", scale="small", seed=1, max_queries=60
        )
        assert 0 < report.num_queries <= 60
        assert report.throughput_qps() > 0

    def test_serve_live_cacheless_has_no_warmup(self):
        layout = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        engine = make_engine(layout, cache_ratio=0.0)
        report = serve_live(
            engine, "criteo", scale="small", seed=1, max_queries=50
        )
        assert report.num_queries == 50  # nothing excluded

    def test_serve_live_warmup_excluded(self):
        layout = layout_for("criteo", "none", 0.0, scale="small", seed=1)
        engine = make_engine(layout, cache_ratio=0.2)
        report = serve_live(
            engine,
            "criteo",
            scale="small",
            seed=1,
            max_queries=50,
            warmup_fraction=0.2,
        )
        assert report.num_queries == 40


class TestNormalize:
    def test_scales_by_base(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_base(self):
        assert normalize([1.0, 2.0], 0.0) == [0.0, 0.0]
