"""DRAM tier planner and the tier-aware selection fast path.

Three layers of guarantees:

* offline: :class:`TierPlan` construction, validation, ranking, and the
  checksummed persistence envelope;
* selection: differential tests (hand-built layouts plus hypothesis
  random layouts) that tier-aware fast selectors stay bit-identical to
  the reference oracle, that an *empty* tier changes nothing, and that
  a populated tier partitions every query exactly — each distinct key
  served once, from exactly one of {tier, pages};
* serving: engine- and cluster-level accounting (tier hits counted,
  ``tier_ratio=0`` parity with the legacy path, N>1 plan rejection),
  and the uniform ``NullCache`` disabled-cache contract.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ConfigError,
    EngineConfig,
    MaxEmbedConfig,
    PageLayout,
    Query,
    QueryTrace,
    ServingEngine,
    ServingError,
    build_sharded_layout,
)
from repro.cache.policies import CACHE_POLICIES, NullCache, make_cache
from repro.cluster import ClusterEngine
from repro.errors import CorruptArtifactError
from repro.placement import build_indexes
from repro.serving import (
    FastGreedySelector,
    FastOnePassSelector,
    GreedySetCoverSelector,
    OnePassSelector,
)
from repro.tiering import (
    PinnedTier,
    TierPlan,
    hotness_from_trace,
    load_tier_plan,
    plan_tier,
    plan_tier_from_trace,
    replica_counts_from_layout,
    save_tier_plan,
)
from tests.test_fast_selection import (
    assert_same_outcome,
    layouts_queries_limits,
)


@pytest.fixture
def layout():
    """Keys 0/4/5 carry replicas; 8 keys over 4 pages + 2 replica pages."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (0, 4, 5),
            (1, 6),
        ],
        num_base_pages=2,
    )


@pytest.fixture
def hot_trace():
    """Keys 6 and 2 dominate the history; 0 appears once."""
    queries = (
        [Query((6, 2))] * 10
        + [Query((6,))] * 5
        + [Query((0, 1, 2, 3))]
        + [Query((4, 5, 6, 7))]
    )
    return QueryTrace(8, queries)


class TestTierPlanValidation:
    def test_valid_plan(self):
        plan = TierPlan(num_keys=8, tier_ratio=0.25, pinned=(1, 5))
        assert plan.capacity == 2
        assert plan.dram_rows() == 2
        assert plan.source == "replicas"

    def test_rejects_out_of_range_key(self):
        with pytest.raises(ConfigError):
            TierPlan(num_keys=4, tier_ratio=0.5, pinned=(1, 4))
        with pytest.raises(ConfigError):
            TierPlan(num_keys=4, tier_ratio=0.5, pinned=(-1,))

    def test_rejects_duplicates_and_unsorted(self):
        with pytest.raises(ConfigError):
            TierPlan(num_keys=4, tier_ratio=0.5, pinned=(1, 1))
        with pytest.raises(ConfigError):
            TierPlan(num_keys=4, tier_ratio=0.5, pinned=(2, 1))

    def test_rejects_bad_ratio_and_source(self):
        with pytest.raises(ConfigError):
            TierPlan(num_keys=4, tier_ratio=1.5, pinned=())
        with pytest.raises(ConfigError):
            TierPlan(num_keys=4, tier_ratio=0.5, pinned=(), source="magic")

    def test_rejects_nonpositive_table(self):
        with pytest.raises(ConfigError):
            TierPlan(num_keys=0, tier_ratio=0.0, pinned=())


class TestPinnedTier:
    def test_split_preserves_order_both_sides(self):
        tier = PinnedTier(8, (1, 5, 6))
        hits, residue = tier.split([7, 6, 0, 5, 3, 1])
        assert hits == [6, 5, 1]
        assert residue == [7, 0, 3]

    def test_out_of_range_keys_fall_through_to_residue(self):
        tier = PinnedTier(8, (1,))
        hits, residue = tier.split([1, 99, -3])
        assert hits == [1]
        assert residue == [99, -3]

    def test_membership_and_len(self):
        tier = PinnedTier(8, (2, 3))
        assert 2 in tier and 3 in tier
        assert 0 not in tier and 99 not in tier and -1 not in tier
        assert len(tier) == 2

    def test_constructor_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            PinnedTier(4, (4,))


class TestPlanTier:
    def test_trace_hotness_ranks_first(self, layout, hot_trace):
        plan = plan_tier_from_trace(layout, hot_trace, 0.25)
        assert plan.source == "trace"
        assert plan.capacity == 2
        assert set(plan.pinned) == {2, 6}  # the two hottest keys

    def test_replica_fallback_without_trace(self, layout):
        plan = plan_tier(layout, 0.25)
        assert plan.source == "replicas"
        # 0, 1, 4, 5, 6 have two pages; ties break by ascending key.
        assert plan.pinned == (0, 1)

    def test_capacity_is_ceiling(self, layout):
        assert plan_tier(layout, 0.01).capacity == 1  # ceil(0.08)
        assert plan_tier(layout, 0.5).capacity == 4
        assert plan_tier(layout, 1.0).capacity == 8

    def test_zero_ratio_is_empty(self, layout):
        plan = plan_tier(layout, 0.0)
        assert plan.pinned == ()
        assert plan.runtime().split([0, 1]) == ([], [0, 1])

    def test_hotness_shape_checked(self, layout):
        import numpy as np

        with pytest.raises(ConfigError):
            plan_tier(layout, 0.5, hotness=np.zeros(3, dtype=np.int64))

    def test_hotness_counts(self, layout, hot_trace):
        counts = hotness_from_trace(hot_trace, 8)
        assert counts[6] == 16 and counts[2] == 11 and counts[0] == 1
        replicas = replica_counts_from_layout(layout)
        assert list(replicas) == [2, 2, 1, 1, 2, 2, 2, 1]

    def test_trace_key_out_of_range_raises(self, layout):
        with pytest.raises(ConfigError):
            hotness_from_trace([Query((9,))], 8)


class TestSerialization:
    def test_round_trip(self, tmp_path, layout, hot_trace):
        plan = plan_tier_from_trace(layout, hot_trace, 0.5)
        path = tmp_path / "tier.json"
        save_tier_plan(plan, path)
        assert load_tier_plan(path) == plan

    def test_tampered_payload_rejected(self, tmp_path, layout):
        plan = plan_tier(layout, 0.25)
        path = tmp_path / "tier.json"
        save_tier_plan(plan, path)
        document = json.loads(path.read_text())
        document["payload"]["pinned"] = [0, 2]  # flip a key, keep crc
        path.write_text(json.dumps(document))
        with pytest.raises(CorruptArtifactError):
            load_tier_plan(path)

    def test_missing_field_rejected(self, tmp_path, layout):
        from repro.integrity import MAGIC_TIER_PLAN, wrap_document

        path = tmp_path / "tier.json"
        path.write_text(
            json.dumps(wrap_document(MAGIC_TIER_PLAN, {"num_keys": 8}))
        )
        with pytest.raises(ConfigError):
            load_tier_plan(path)


class TestConfigValidation:
    def test_maxembed_config_tier_fields(self):
        config = MaxEmbedConfig(tier_mode="hybrid", tier_ratio=0.1)
        assert config.tier_mode == "hybrid"
        with pytest.raises(ConfigError):
            MaxEmbedConfig(tier_mode="mru")
        with pytest.raises(ConfigError):
            MaxEmbedConfig(tier_ratio=1.5)

    def test_engine_config_plan_requires_tier_mode(self, layout):
        plan = plan_tier(layout, 0.25)
        with pytest.raises(ServingError):
            EngineConfig(tier_mode="lru", tier_plan=plan)
        with pytest.raises(ServingError):
            EngineConfig(tier_mode="flat")


def selector_pairs(layout, limit=None):
    forward, invert = build_indexes(layout, limit=limit)
    yield (
        FastOnePassSelector(forward, invert),
        OnePassSelector(forward, invert),
    )
    yield (
        FastGreedySelector(forward, invert),
        GreedySetCoverSelector(forward, invert),
    )


QUERIES = [
    [0],
    [5],
    [0, 1, 4, 6],
    [0, 4, 5],
    [5, 5, 4],
    [0, 1, 2, 3, 4, 5, 6, 7],
    [7, 6, 5, 4, 3, 2, 1, 0],
]


def assert_tier_partition(outcome, tier, keys):
    """Every distinct key served exactly once, from exactly one tier."""
    distinct = list(dict.fromkeys(keys))
    expected_hits = [k for k in distinct if k in tier]
    covered = outcome.covered_keys()
    assert outcome.tier_hits == len(expected_hits)
    assert covered == set(distinct) - set(expected_hits)
    assert not covered & set(expected_hits)


class TestTieredSelection:
    def test_fast_matches_reference_with_tier(self, layout):
        tier = PinnedTier(8, (0, 5))
        for fast, ref in selector_pairs(layout):
            fast.attach_tier(tier)
            ref.attach_tier(tier)
            for keys in QUERIES:
                got, want = fast.select(keys), ref.select(keys)
                assert_same_outcome(got, want)
                assert got.tier_hits == want.tier_hits
                assert_tier_partition(got, tier, keys)

    def test_select_many_matches_with_tier(self, layout):
        tier = PinnedTier(8, (0, 5))
        for fast, ref in selector_pairs(layout):
            fast.attach_tier(tier)
            ref.attach_tier(tier)
            for got, want in zip(
                fast.select_many(QUERIES), ref.select_many(QUERIES)
            ):
                assert_same_outcome(got, want)
                assert got.tier_hits == want.tier_hits

    def test_empty_tier_is_identity(self, layout):
        empty = PinnedTier(8, ())
        for tiered, plain in selector_pairs(layout):
            tiered.attach_tier(empty)
            for keys in QUERIES:
                got, want = tiered.select(keys), plain.select(keys)
                assert_same_outcome(got, want)
                assert got.tier_hits == 0

    def test_detach_restores_untiered_path(self, layout):
        for fast, ref in selector_pairs(layout):
            fast.attach_tier(PinnedTier(8, (0, 5)))
            fast.attach_tier(None)
            for keys in QUERIES:
                assert_same_outcome(fast.select(keys), ref.select(keys))

    def test_fully_pinned_query_reads_no_pages(self, layout):
        tier = PinnedTier(8, (0, 4, 5))
        for fast, _ in selector_pairs(layout):
            fast.attach_tier(tier)
            outcome = fast.select([0, 4, 5, 0])
            assert outcome.tier_hits == 3
            assert outcome.pages == []
            assert outcome.covered_keys() == set()

    def test_tiered_select_still_rejects_unknown_keys(self, layout):
        for fast, _ in selector_pairs(layout):
            fast.attach_tier(PinnedTier(8, (0,)))
            with pytest.raises(ServingError):
                fast.select([0, 99])


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=layouts_queries_limits(), ratio=st.sampled_from([0.0, 0.2, 0.5]))
def test_tiered_selectors_match_reference(data, ratio):
    layout, queries, limit = data
    tier = plan_tier(layout, ratio).runtime()
    forward, invert = build_indexes(layout, limit=limit)
    pairs = [
        (
            FastOnePassSelector(forward, invert),
            OnePassSelector(forward, invert),
        ),
        (
            FastGreedySelector(forward, invert),
            GreedySetCoverSelector(forward, invert),
        ),
    ]
    for fast, ref in pairs:
        fast.attach_tier(tier)
        ref.attach_tier(tier)
        for keys in queries:
            got, want = fast.select(keys), ref.select(keys)
            assert_same_outcome(got, want)
            assert got.tier_hits == want.tier_hits
            assert_tier_partition(got, tier, keys)
        for got, want in zip(
            fast.select_many(queries), ref.select_many(queries)
        ):
            assert_same_outcome(got, want)
            assert got.tier_hits == want.tier_hits


@pytest.fixture
def stream():
    return [Query((k % 8, (k + 1) % 8, (k + 5) % 8)) for k in range(120)]


class TestEngineTiering:
    def test_zero_ratio_parity_with_legacy(self, layout, stream):
        base = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0)
        ).serve_trace(stream)
        tiered = ServingEngine(
            layout,
            EngineConfig(cache_ratio=0.0, tier_mode="pinned", tier_ratio=0.0),
        ).serve_trace(stream)
        assert base.total_pages_read == tiered.total_pages_read
        assert base.total_tier_hits == tiered.total_tier_hits == 0
        assert base.latencies_us == tiered.latencies_us
        assert base.total_valid_embeddings == tiered.total_valid_embeddings

    def test_pinned_engine_counts_tier_hits(self, layout, stream):
        engine = ServingEngine(
            layout,
            EngineConfig(cache_ratio=0.0, tier_mode="pinned", tier_ratio=0.25),
        )
        info = engine.tier_info()
        assert info is not None and info["pinned_keys"] == 2
        report = engine.serve_trace(stream)
        assert report.total_tier_hits > 0
        assert report.tier_hit_rate() > 0
        assert report.dram_hit_rate() >= report.tier_hit_rate()
        # Tier hits reduce SSD work versus the untiered engine.
        base = ServingEngine(
            layout, EngineConfig(cache_ratio=0.0)
        ).serve_trace(stream)
        assert report.total_pages_read < base.total_pages_read

    def test_pinned_mode_forces_cache_off(self, layout):
        engine = ServingEngine(
            layout,
            EngineConfig(cache_ratio=0.5, tier_mode="pinned", tier_ratio=0.25),
        )
        assert not engine.cache.enabled

    def test_cache_only_rung_serves_tier_hits(self, layout):
        from repro.overload import DegradeLevel

        engine = ServingEngine(
            layout,
            EngineConfig(cache_ratio=0.0, tier_mode="pinned", tier_ratio=0.25),
        )
        rung = DegradeLevel(
            level=3, name="cache-only", cache_only=True, fanout_cap=1
        )
        pinned = engine.tier_plan.pinned
        unpinned = [k for k in range(8) if k not in pinned][:2]
        query = Query(tuple(pinned) + tuple(unpinned))
        result = engine.serve_query(query, degrade=rung)
        # The pinned tier keeps serving at the deepest brownout rung —
        # strictly better coverage than cache-only LRU with no tier.
        assert result.tier_hits == len(pinned)
        assert result.pages_read == 0
        assert result.degrade_shed_keys == len(unpinned)
        assert result.missing_keys == len(unpinned)

    def test_report_dict_carries_tier_fields(self, layout, stream):
        engine = ServingEngine(
            layout,
            EngineConfig(cache_ratio=0.0, tier_mode="pinned", tier_ratio=0.25),
        )
        data = engine.serve_trace(stream).as_dict()
        assert data["tier_hits"] > 0
        assert 0 < data["tier_hit_rate"] <= 1


class TestClusterTiering:
    def _trace(self):
        queries = (
            [Query((0, 1, 2, 3))] * 6
            + [Query((4, 5, 6, 7))] * 4
            + [Query((0, 1))] * 3
            + [Query((6, 7))] * 2
        )
        return QueryTrace(8, queries)

    def test_single_shard_parity_with_engine(self):
        trace = self._trace()
        config = MaxEmbedConfig(num_shards=1, replication_ratio=0.2)
        sharded = build_sharded_layout(trace, config)
        engine_config = EngineConfig(
            cache_ratio=0.0, tier_mode="pinned", tier_ratio=0.25
        )
        cluster = ClusterEngine(sharded, engine_config)
        cluster_report = cluster.serve_trace(trace)
        solo = ServingEngine(sharded.layouts[0], engine_config).serve_trace(
            [Query(tuple(sharded.plan.local_id(k) for k in q.keys))
             for q in trace]
        )
        assert (
            cluster_report.report.total_tier_hits == solo.total_tier_hits
        )
        assert (
            cluster_report.report.total_pages_read == solo.total_pages_read
        )
        assert cluster_report.shard_tier_hits == [solo.total_tier_hits]

    def test_multi_shard_tier_accounting(self):
        trace = self._trace()
        config = MaxEmbedConfig(num_shards=2, replication_ratio=0.2)
        sharded = build_sharded_layout(trace, config)
        cluster = ClusterEngine(
            sharded,
            EngineConfig(cache_ratio=0.0, tier_mode="pinned", tier_ratio=0.25),
        )
        report = cluster.serve_trace(trace)
        assert len(report.shard_tier_hits) == 2
        assert sum(report.shard_tier_hits) == report.report.total_tier_hits
        assert report.report.total_tier_hits > 0
        info = cluster.tier_info()
        assert info is not None and len(info["shards"]) == 2
        assert report.as_dict()["tier_hits"] > 0

    def test_explicit_plan_rejected_at_multi_shard(self):
        trace = self._trace()
        config = MaxEmbedConfig(num_shards=2, replication_ratio=0.2)
        sharded = build_sharded_layout(trace, config)
        plan = TierPlan(num_keys=8, tier_ratio=0.25, pinned=(0, 6))
        with pytest.raises(ServingError):
            ClusterEngine(
                sharded,
                EngineConfig(
                    cache_ratio=0.0, tier_mode="pinned", tier_plan=plan
                ),
            )


class TestNullCacheContract:
    @pytest.mark.parametrize("policy", sorted(CACHE_POLICIES))
    def test_disabled_cache_is_null_for_every_policy(self, policy):
        cache = make_cache(policy, 0)
        assert isinstance(cache, NullCache)
        cache.put(1, "a")
        assert cache.get(1) is None
        assert cache.peek(1) is None
        assert 1 not in cache
        assert len(cache) == 0 and cache.capacity == 0
        # Disabled lookups are NOT misses: the stats stay zeroed.
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_unknown_policy_still_validated(self):
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            make_cache("mru", 0)
