"""Tests for repro.overload: admission control, degradation, brownout.

Covers the three overload primitives in isolation (bounded queue with
shed policies, degradation ladder, brownout state machine), their wiring
into the serving engine / cluster router, and the open-loop simulator's
goodput accounting — including the bit-identical parity of the disabled
paths with the legacy simulator.
"""

import pytest

from repro import (
    ConfigError,
    EngineConfig,
    MaxEmbedConfig,
    PageLayout,
    Query,
    QueryTrace,
    ServingEngine,
    build_sharded_layout,
)
from repro.cluster import ClusterEngine
from repro.cluster.router import SHARD_SHED
from repro.overload import (
    AdmissionConfig,
    AdmissionQueue,
    BrownoutConfig,
    BrownoutController,
    DegradeConfig,
    DegradeLevel,
    QueueEntry,
    default_ladder,
    engine_hotness,
)
from repro.serving import OpenLoopSimulator
from repro.serving.openloop import OpenLoopReport, OpenLoopResult


def entry(index, arrival=0.0, priority=0.0):
    return QueueEntry(
        arrival_us=arrival, index=index, query=Query((0,)), priority=priority
    )


@pytest.fixture
def hot_cold_layout():
    """Keys 0/1/4/5 carry a replica (hot); 2/3/6/7 are single-copy cold."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4, 1, 5)],
    )


@pytest.fixture
def engine(hot_cold_layout):
    return ServingEngine(
        hot_cold_layout, EngineConfig(cache_ratio=0.0, threads=2)
    )


@pytest.fixture
def stream():
    return [Query(((k % 7), (k + 1) % 7, (k + 3) % 8)) for k in range(200)]


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(capacity=0)
        with pytest.raises(ConfigError):
            AdmissionConfig(capacity=4, policy="lifo")
        with pytest.raises(ConfigError):
            AdmissionConfig(capacity=4, queue_deadline_us=0.0)
        with pytest.raises(ConfigError):
            AdmissionConfig(capacity=4, policy="deadline")  # needs deadline

    def test_maxembed_config_accessor(self):
        assert MaxEmbedConfig().admission_config() is None
        config = MaxEmbedConfig(
            admission_capacity=16,
            admission_policy="deadline",
            admission_deadline_us=500.0,
        )
        admission = config.admission_config()
        assert admission.capacity == 16
        assert admission.policy == "deadline"
        with pytest.raises(ConfigError):
            MaxEmbedConfig(admission_policy="nope")
        with pytest.raises(ConfigError):
            # Invalid combination caught at construction, not first use.
            MaxEmbedConfig(
                admission_capacity=16, admission_policy="deadline"
            )


class TestAdmissionQueue:
    def test_unbounded_without_config(self):
        queue = AdmissionQueue(None)
        for i in range(1000):
            assert queue.offer(entry(i), now_us=0.0) == []
        assert queue.depth == 1000

    def test_tail_drop_sheds_newcomer(self):
        queue = AdmissionQueue(AdmissionConfig(capacity=2))
        queue.offer(entry(0), 0.0)
        queue.offer(entry(1), 0.0)
        shed = queue.offer(entry(2), 0.0)
        assert [(e.index, reason) for e, reason in shed] == [(2, "tail")]
        assert queue.depth == 2

    def test_deadline_policy_evicts_expired_waiters(self):
        queue = AdmissionQueue(
            AdmissionConfig(
                capacity=2, policy="deadline", queue_deadline_us=100.0
            )
        )
        queue.offer(entry(0, arrival=0.0), 0.0)
        queue.offer(entry(1, arrival=150.0), 150.0)
        # Entry 0 has waited 200 us > 100 at the time 2 arrives: it is
        # dead weight, evicted to make room.
        shed = queue.offer(entry(2, arrival=200.0), 200.0)
        assert [(e.index, r) for e, r in shed] == [(0, "deadline")]
        assert queue.depth == 2

    def test_deadline_policy_tail_drops_when_nothing_expired(self):
        queue = AdmissionQueue(
            AdmissionConfig(
                capacity=2, policy="deadline", queue_deadline_us=1000.0
            )
        )
        queue.offer(entry(0, arrival=0.0), 0.0)
        queue.offer(entry(1, arrival=1.0), 1.0)
        shed = queue.offer(entry(2, arrival=2.0), 2.0)
        assert [(e.index, r) for e, r in shed] == [(2, "tail")]

    def test_priority_policy_evicts_coldest_for_hotter(self):
        queue = AdmissionQueue(AdmissionConfig(capacity=2, policy="priority"))
        queue.offer(entry(0, priority=3.0), 0.0)
        queue.offer(entry(1, priority=1.0), 0.0)
        shed = queue.offer(entry(2, priority=2.0), 0.0)
        assert [(e.index, r) for e, r in shed] == [(1, "priority")]
        assert [e.index for e in queue._queue] == [0, 2]

    def test_priority_policy_sheds_cold_newcomer(self):
        queue = AdmissionQueue(AdmissionConfig(capacity=2, policy="priority"))
        queue.offer(entry(0, priority=3.0), 0.0)
        queue.offer(entry(1, priority=2.0), 0.0)
        shed = queue.offer(entry(2, priority=1.0), 0.0)
        assert [(e.index, r) for e, r in shed] == [(2, "priority")]

    def test_priority_tie_evicts_youngest(self):
        queue = AdmissionQueue(AdmissionConfig(capacity=2, policy="priority"))
        queue.offer(entry(0, priority=1.0), 0.0)
        queue.offer(entry(1, priority=1.0), 0.0)
        shed = queue.offer(entry(2, priority=2.0), 0.0)
        # Equal-priority waiters: the younger (1) loses its slot first.
        assert [(e.index, r) for e, r in shed] == [(1, "priority")]

    def test_take_skips_deadline_missed_waiters(self):
        queue = AdmissionQueue(
            AdmissionConfig(
                capacity=8, policy="tail", queue_deadline_us=50.0
            )
        )
        queue.offer(entry(0, arrival=0.0), 0.0)
        queue.offer(entry(1, arrival=90.0), 90.0)
        taken, missed = queue.take(free_at_us=100.0)
        # Entry 0 would start 100 us after arrival — over its deadline.
        assert [e.index for e in missed] == [0]
        assert taken.index == 1
        taken, missed = queue.take(free_at_us=100.0)
        assert taken is None and missed == []

    def test_take_fifo_without_deadline(self):
        queue = AdmissionQueue(AdmissionConfig(capacity=8))
        queue.offer(entry(0), 0.0)
        queue.offer(entry(1), 0.0)
        assert queue.take(1e9)[0].index == 0
        assert queue.take(1e9)[0].index == 1


class TestDegradeLadder:
    def test_level_validation(self):
        with pytest.raises(ConfigError):
            DegradeLevel(level=-1, name="bad")
        with pytest.raises(ConfigError):
            DegradeLevel(level=1, name="bad", max_pages_per_query=0)
        with pytest.raises(ConfigError):
            DegradeLevel(level=1, name="bad", fanout_cap=0)

    def test_ladder_validation(self):
        with pytest.raises(ConfigError):
            DegradeConfig(levels=())
        with pytest.raises(ConfigError):
            DegradeConfig(
                levels=(DegradeLevel(level=0, name="full", cache_only=True),)
            )  # rung 0 must be a no-op
        with pytest.raises(ConfigError):
            DegradeConfig(
                levels=(
                    DegradeLevel(level=0, name="full"),
                    DegradeLevel(level=5, name="mislabelled"),
                )
            )

    def test_default_ladder_shape(self):
        ladder = default_ladder()
        assert ladder.max_level == 3
        assert ladder.levels[0].is_noop
        assert ladder.levels[1].max_pages_per_query == 16
        assert ladder.levels[2].skip_cold_keys
        assert ladder.levels[3].cache_only
        # Clamped lookup.
        assert ladder.level(-3) is ladder.levels[0]
        assert ladder.level(99) is ladder.levels[3]
        custom = default_ladder(page_cap=10)
        assert custom.levels[1].max_pages_per_query == 10
        assert custom.levels[2].max_pages_per_query == 5
        with pytest.raises(ConfigError):
            default_ladder(page_cap=1)


class TestBrownoutController:
    def test_config_validated(self):
        with pytest.raises(ConfigError):
            BrownoutConfig(high_watermark_us=0.0)
        with pytest.raises(ConfigError):
            BrownoutConfig(high_watermark_us=100.0, low_watermark_us=100.0)
        with pytest.raises(ConfigError):
            BrownoutConfig(window=0)
        with pytest.raises(ConfigError):
            BrownoutConfig(quantile=0.0)
        with pytest.raises(ConfigError):
            BrownoutConfig(cool_down_observations=0)
        with pytest.raises(ConfigError):
            BrownoutController(BrownoutConfig(), max_level=-1)

    def test_signal_is_nearest_rank_quantile(self):
        controller = BrownoutController(
            BrownoutConfig(window=4, quantile=0.5), max_level=3
        )
        for latency in (40.0, 10.0, 30.0, 20.0):
            controller._window.append(latency)
        # ceil(0.5 * 4) - 1 = rank 1 of the sorted window.
        assert controller.signal_us() == 20.0

    def test_full_up_down_cycle_with_dwell_and_cooldown(self):
        config = BrownoutConfig(
            high_watermark_us=100.0,
            low_watermark_us=50.0,
            window=1,
            quantile=1.0,
            dwell_us=10.0,
            cool_down_observations=2,
        )
        controller = BrownoutController(config, max_level=2)
        assert controller.level == 0
        assert controller.observe(150.0, 0, now_us=0.0) == 1
        # Hot again inside the dwell window: no second step.
        assert controller.observe(150.0, 0, now_us=5.0) == 1
        assert controller.observe(150.0, 0, now_us=15.0) == 2
        # Already at the ladder top: stays put.
        assert controller.observe(150.0, 0, now_us=30.0) == 2
        # One calm completion is not enough (cool_down = 2)...
        assert controller.observe(40.0, 0, now_us=40.0) == 2
        assert controller.observe(40.0, 0, now_us=50.0) == 1
        # A between-watermarks completion resets the calm streak.
        assert controller.observe(70.0, 0, now_us=60.0) == 1
        assert controller.observe(40.0, 0, now_us=70.0) == 1
        assert controller.observe(40.0, 0, now_us=80.0) == 0
        assert controller.observe(40.0, 0, now_us=90.0) == 0  # floor
        moves = [
            (t.at_us, t.from_level, t.to_level)
            for t in controller.transitions
        ]
        assert moves == [
            (0.0, 0, 1),
            (15.0, 1, 2),
            (50.0, 2, 1),
            (80.0, 1, 0),
        ]
        assert all(t.signal_us > 0 for t in controller.transitions)

    def test_queue_depth_counts_as_pressure(self):
        config = BrownoutConfig(
            high_watermark_us=1000.0,
            low_watermark_us=500.0,
            window=1,
            quantile=1.0,
            queue_high=5,
            dwell_us=0.0,
            cool_down_observations=1,
        )
        controller = BrownoutController(config, max_level=2)
        # Latency is calm but the queue is deep: still steps up.
        assert controller.observe(10.0, 6, now_us=0.0) == 1
        # Calm latency alone cannot step down while the queue stays deep.
        assert controller.observe(10.0, 6, now_us=10.0) == 2
        assert controller.observe(10.0, 0, now_us=20.0) == 1


class TestEngineHotness:
    def test_single_engine_mean_replica_count(self, engine):
        hotness = engine_hotness(engine)
        assert hotness(Query((0, 1))) == pytest.approx(2.0)
        assert hotness(Query((2, 3))) == pytest.approx(1.0)
        assert hotness(Query((0, 2))) == pytest.approx(1.5)

    def test_cluster_engine_uses_shard_local_indexes(self):
        trace = QueryTrace(
            8,
            [Query((0, 1, 2, 3))] * 6 + [Query((4, 5, 6, 7))] * 4,
        )
        sharded = build_sharded_layout(
            trace,
            MaxEmbedConfig(
                num_shards=2,
                shard_strategy="modulo",
                replication_ratio=0.5,
                build_workers=1,
            ),
        )
        cluster = ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))
        hotness = engine_hotness(cluster)
        assert hotness(Query((0, 1, 2, 3))) >= 1.0


class TestEngineDegradedModes:
    QUERY = Query((0, 1, 2, 3, 4, 5, 6, 7))

    def test_noop_rung_is_bit_identical(self, hot_cold_layout):
        def fresh():
            return ServingEngine(
                hot_cold_layout, EngineConfig(cache_ratio=0.0)
            )

        plain = fresh().serve_query(self.QUERY, start_us=5.0)
        noop = fresh().serve_query(
            self.QUERY, start_us=5.0, degrade=default_ladder().level(0)
        )
        assert noop == plain
        assert noop.degrade_level == 0
        assert noop.degrade_shed_keys == 0

    def test_cache_only_never_touches_device(self, engine):
        rung = default_ladder().level(3)
        result = engine.serve_query(self.QUERY, degrade=rung)
        assert result.pages_read == 0
        assert result.ssd_keys == 0
        assert result.missing_keys == 8
        assert result.degrade_shed_keys == 8
        assert result.degrade_level == 3
        assert result.degraded

    def test_page_cap_truncates_selection(self, engine):
        rung = DegradeLevel(level=1, name="capped", max_pages_per_query=1)
        result = engine.serve_query(self.QUERY, degrade=rung)
        assert result.pages_read == 1
        assert 0 < result.ssd_keys <= 4
        assert result.missing_keys == 8 - result.ssd_keys
        assert result.degrade_shed_keys == result.missing_keys
        assert result.degrade_level == 1

    def test_skip_cold_keys_serves_replicated_only(self, engine):
        rung = DegradeLevel(level=2, name="hot-only", skip_cold_keys=True)
        result = engine.serve_query(self.QUERY, degrade=rung)
        # Keys 0/1/4/5 carry replicas; the four cold keys are shed.
        assert result.ssd_keys == 4
        assert result.missing_keys == 4
        assert result.degrade_shed_keys == 4

    def test_generous_cap_keeps_full_coverage(self, engine):
        rung = DegradeLevel(level=1, name="capped", max_pages_per_query=8)
        result = engine.serve_query(self.QUERY, degrade=rung)
        assert result.missing_keys == 0
        assert result.degrade_level == 1
        assert result.degrade_shed_keys == 0

    def test_degrade_counts_flow_into_report(self, hot_cold_layout):
        from repro.serving.stats import aggregate_results

        engine = ServingEngine(hot_cold_layout, EngineConfig(cache_ratio=0.0))
        results = [
            engine.serve_query(self.QUERY),
            engine.serve_query(
                self.QUERY,
                degrade=DegradeLevel(
                    level=2, name="hot-only", skip_cold_keys=True
                ),
            ),
        ]
        report = aggregate_results(results, 4096, 256)
        assert report.total_degrade_shed_keys == 4
        assert report.degrade_level_hist == {2: 1}
        assert report.degraded_mode_queries() == 1
        assert report.coverage() == pytest.approx(1.0 - 4 / 16)


class TestClusterDegrade:
    @pytest.fixture
    def sharded(self):
        trace = QueryTrace(
            8,
            [Query((0, 1, 2, 3))] * 6
            + [Query((4, 5, 6, 7))] * 4
            + [Query((0, 1, 4))] * 2,
        )
        return build_sharded_layout(
            trace,
            MaxEmbedConfig(
                num_shards=2, shard_strategy="modulo", build_workers=1
            ),
        )

    @pytest.fixture
    def cluster(self, sharded):
        return ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))

    def test_noop_rung_is_bit_identical(self, sharded):
        query = Query((0, 1, 2, 3, 4, 5))
        # Fresh engines: serving itself mutates cache state.
        plain = ClusterEngine(
            sharded, EngineConfig(cache_ratio=0.0)
        ).serve_query(query, start_us=3.0)
        noop = ClusterEngine(
            sharded, EngineConfig(cache_ratio=0.0)
        ).serve_query(query, start_us=3.0, degrade=default_ladder().level(0))
        assert noop == plain

    def test_fanout_cap_sheds_smallest_fragments(self, cluster):
        # Modulo over 2 shards: evens on one shard, odds on the other.
        query = Query((0, 1, 2, 3, 4, 5))  # 3 keys per shard — tie
        rung = DegradeLevel(level=3, name="capped-fanout", fanout_cap=1)
        result = cluster.serve_query(query, degrade=rung)
        assert result.requested_keys == 6
        # One whole fragment shed: its 3 keys are missing.
        assert result.missing_keys == 3
        assert result.degrade_shed_keys == 3
        assert result.degrade_level == 3

    def test_fanout_cap_keeps_largest_fragment(self, cluster):
        query = Query((0, 2, 4, 1))  # 3 even keys vs 1 odd key
        rung = DegradeLevel(level=3, name="capped-fanout", fanout_cap=1)
        result = cluster.serve_query(query, degrade=rung)
        # The 1-key fragment is shed, the 3-key fragment served.
        assert result.missing_keys == 1
        assert result.degrade_shed_keys == 1

    def test_serve_trace_counts_shard_sheds(self, cluster):
        queries = [Query((0, 1, 2, 3, 4, 5))] * 5
        rung = DegradeLevel(level=3, name="capped-fanout", fanout_cap=1)
        report = cluster.serve_trace(queries, degrade=rung)
        assert sum(report.shard_shed) == 5
        assert report.report.total_degrade_shed_keys == 15
        assert report.report.degraded_mode_queries() == 5
        summary = report.as_dict()
        assert summary["shard_shed"] == 5
        assert summary["degraded_mode_queries"] == 5
        assert summary["degrade_shed_keys"] == 15

    def test_shed_constant_registered(self):
        assert SHARD_SHED == "shed"


class TestOpenLoopParity:
    """Disabled overload knobs must not change a single bit of output."""

    def _legacy(self, stream, qps, engine):
        return OpenLoopSimulator(engine, seed=7).run(stream, offered_qps=qps)

    def test_unbounded_admission_matches_legacy(self, hot_cold_layout, stream):
        def fresh():
            return ServingEngine(
                hot_cold_layout, EngineConfig(cache_ratio=0.0, threads=2)
            )

        legacy = self._legacy(stream, 300_000.0, fresh())
        admitted = OpenLoopSimulator(
            fresh(),
            seed=7,
            admission=AdmissionConfig(capacity=10**9),
        ).run(stream, offered_qps=300_000.0)
        assert admitted.results == legacy.results
        assert admitted.shed == {}
        assert admitted.deadline_misses == 0

    def test_cool_brownout_matches_legacy(self, hot_cold_layout, stream):
        def fresh():
            return ServingEngine(
                hot_cold_layout, EngineConfig(cache_ratio=0.0, threads=2)
            )

        legacy = self._legacy(stream, 300_000.0, fresh())
        browned = OpenLoopSimulator(
            fresh(),
            seed=7,
            brownout=BrownoutConfig(
                high_watermark_us=1e12, low_watermark_us=1e11
            ),
        ).run(stream, offered_qps=300_000.0)
        assert browned.results == legacy.results
        assert browned.brownout_transitions == []
        assert browned.final_degrade_level == 0

    def test_cluster_unbounded_admission_matches_legacy(self):
        trace = QueryTrace(
            8, [Query((0, 1, 2, 3))] * 6 + [Query((4, 5, 6, 7))] * 4
        )
        sharded = build_sharded_layout(
            trace,
            MaxEmbedConfig(
                num_shards=2, shard_strategy="modulo", build_workers=1
            ),
        )
        stream = [Query((k % 8, (k + 4) % 8)) for k in range(100)]

        def fresh():
            return ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))

        legacy = OpenLoopSimulator(fresh(), seed=3).run(
            stream, offered_qps=200_000.0
        )
        admitted = OpenLoopSimulator(
            fresh(), seed=3, admission=AdmissionConfig(capacity=10**9)
        ).run(stream, offered_qps=200_000.0)
        assert admitted.results == legacy.results


class TestOverloadedSimulation:
    def _saturating_sim(self, hot_cold_layout, admission, brownout=None):
        engine = ServingEngine(
            hot_cold_layout, EngineConfig(cache_ratio=0.0, threads=1)
        )
        return OpenLoopSimulator(
            engine, seed=11, admission=admission, brownout=brownout
        )

    def test_offered_equals_completions_plus_sheds_and_misses(
        self, hot_cold_layout, stream
    ):
        simulator = self._saturating_sim(
            hot_cold_layout,
            AdmissionConfig(
                capacity=4, policy="deadline", queue_deadline_us=40.0
            ),
        )
        report = simulator.run(stream, offered_qps=10_000_000.0)
        assert report.shed_count > 0
        assert (
            report.offered_count()
            == len(report.results)
            + report.shed_count
            + report.deadline_misses
        )
        assert report.completion_rate() < 1.0

    def test_tail_drop_bounds_queue_wait(self, hot_cold_layout, stream):
        bounded = self._saturating_sim(
            hot_cold_layout, AdmissionConfig(capacity=2)
        ).run(stream, offered_qps=10_000_000.0)
        unbounded = self._saturating_sim(hot_cold_layout, None).run(
            stream, offered_qps=10_000_000.0
        )
        assert bounded.shed.get("tail", 0) > 0
        assert (
            bounded.percentile_latency_us(99)
            < unbounded.percentile_latency_us(99)
        )

    def test_priority_policy_prefers_hot_queries(self, hot_cold_layout):
        # Alternate hot (replicated keys) and cold queries.
        stream = [
            Query((0, 1, 4, 5)) if k % 2 == 0 else Query((2, 3, 6, 7))
            for k in range(200)
        ]
        simulator = self._saturating_sim(
            hot_cold_layout,
            AdmissionConfig(capacity=2, policy="priority"),
        )
        report = simulator.run(stream, offered_qps=10_000_000.0)
        assert report.shed.get("priority", 0) > 0

    def test_brownout_degrades_and_recovers_counters(
        self, hot_cold_layout, stream
    ):
        simulator = self._saturating_sim(
            hot_cold_layout,
            AdmissionConfig(capacity=16),
            brownout=BrownoutConfig(
                high_watermark_us=50.0,
                low_watermark_us=20.0,
                window=8,
                dwell_us=100.0,
                cool_down_observations=4,
            ),
        )
        report = simulator.run(stream, offered_qps=10_000_000.0)
        assert len(report.brownout_transitions) >= 1
        assert report.final_degrade_level > 0
        assert report.degraded_count() > 0

    def test_deterministic_under_seed(self, hot_cold_layout, stream):
        def run():
            return self._saturating_sim(
                hot_cold_layout,
                AdmissionConfig(
                    capacity=4, policy="deadline", queue_deadline_us=40.0
                ),
                brownout=BrownoutConfig(
                    high_watermark_us=50.0, low_watermark_us=20.0
                ),
            ).run(stream, offered_qps=5_000_000.0)

        first, second = run(), run()
        assert first.results == second.results
        assert first.shed == second.shed
        assert first.deadline_misses == second.deadline_misses
        assert [
            (t.at_us, t.from_level, t.to_level)
            for t in first.brownout_transitions
        ] == [
            (t.at_us, t.from_level, t.to_level)
            for t in second.brownout_transitions
        ]


class TestReportAccounting:
    def test_span_needs_two_results(self):
        report = OpenLoopReport(offered_qps=100.0)
        assert report.span_us() == 0.0
        assert report.achieved_qps() == 0.0
        single = OpenLoopReport(
            offered_qps=100.0,
            results=[OpenLoopResult(0.0, 0.0, 50.0)],
        )
        # Documented: 0.0 because a single completion has no span, not
        # because nothing completed.
        assert single.span_us() == 0.0
        assert single.achieved_qps() == 0.0
        assert single.goodput_qps() == 0.0

    def test_span_first_arrival_to_last_completion(self):
        report = OpenLoopReport(
            offered_qps=100.0,
            results=[
                OpenLoopResult(arrival_us=0.0, start_us=0.0, finish_us=150.0),
                OpenLoopResult(
                    arrival_us=100.0, start_us=100.0, finish_us=200.0
                ),
            ],
        )
        assert report.span_us() == pytest.approx(200.0)
        assert report.achieved_qps() == pytest.approx(2 / 200e-6)

    def test_goodput_excludes_partial_coverage_and_slo_misses(self):
        results = [
            OpenLoopResult(0.0, 0.0, 50.0),  # good
            OpenLoopResult(10.0, 10.0, 60.0, missing_keys=2),  # partial
            OpenLoopResult(20.0, 20.0, 400.0),  # slow
        ]
        report = OpenLoopReport(offered_qps=100.0, results=results)
        span = report.span_us()
        assert report.goodput_qps() == pytest.approx(2 / (span * 1e-6))
        assert report.goodput_qps(latency_slo_us=100.0) == pytest.approx(
            1 / (span * 1e-6)
        )

    def test_offered_falls_back_to_completions(self):
        report = OpenLoopReport(
            offered_qps=100.0,
            results=[OpenLoopResult(0.0, 0.0, 1.0)] * 3,
        )
        assert report.offered_count() == 3
        assert report.completion_rate() == 1.0

    def test_latency_curve_threads_warmup_fraction(self, engine, stream):
        simulator = OpenLoopSimulator(engine, seed=0)
        reports = simulator.latency_curve(
            stream,
            load_points=(0.1,),
            capacity_qps=100_000.0,
            warmup_fraction=0.5,
        )
        assert len(reports[0].results) == len(stream) - len(stream) // 2
        assert reports[0].offered_count() == len(stream) - len(stream) // 2
