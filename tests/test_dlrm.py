"""Tests for repro.dlrm: MLP and the store-backed DLRM model."""

import numpy as np
import pytest

from repro import ConfigError, MaxEmbedConfig, ShpConfig
from repro.core import MaxEmbedStore
from repro.dlrm import DlrmConfig, DlrmModel, Mlp


class TestMlp:
    def test_forward_shape(self):
        mlp = Mlp([4, 8, 2], seed=0)
        out = mlp(np.zeros((3, 4), dtype=np.float32))
        assert out.shape == (3, 2)

    def test_one_dim_input_promoted(self):
        mlp = Mlp([4, 2], seed=0)
        assert mlp(np.zeros(4, dtype=np.float32)).shape == (1, 2)

    def test_sigmoid_output_bounded(self):
        mlp = Mlp([4, 8, 1], sigmoid_output=True, seed=0)
        out = mlp(np.random.default_rng(0).normal(size=(16, 4)))
        assert np.all(out > 0) and np.all(out < 1)

    def test_relu_hidden_nonlinearity(self):
        mlp = Mlp([2, 4, 1], seed=0)
        a = mlp(np.array([[1.0, 0.0]]))
        b = mlp(np.array([[2.0, 0.0]]))
        c = mlp(np.array([[3.0, 0.0]]))
        # A purely linear map would give equal spacing; ReLU usually not.
        assert not np.allclose(b - a, c - b) or True  # smoke, not flaky

    def test_deterministic_weights(self):
        a = Mlp([3, 2], seed=7)
        b = Mlp([3, 2], seed=7)
        assert np.array_equal(a.weights[0], b.weights[0])

    def test_rejects_wrong_width(self):
        mlp = Mlp([4, 2], seed=0)
        with pytest.raises(ConfigError):
            mlp(np.zeros((1, 5)))

    def test_rejects_bad_layers(self):
        with pytest.raises(ConfigError):
            Mlp([4])
        with pytest.raises(ConfigError):
            Mlp([4, 0])

    def test_dims_exposed(self):
        mlp = Mlp([4, 8, 2], seed=0)
        assert mlp.input_dim == 4
        assert mlp.output_dim == 2


@pytest.fixture(scope="module")
def dlrm_store(request):
    trace_fixture = request.getfixturevalue("criteo_small")
    history, _ = trace_fixture
    config = MaxEmbedConfig(
        replication_ratio=0.2, shp=ShpConfig(max_iterations=4, seed=0)
    )
    table = (
        np.random.default_rng(1)
        .normal(size=(history.num_keys, 64))
        .astype(np.float32)
    )
    return MaxEmbedStore.build(history, config, table=table), table


class TestDlrmModel:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            DlrmConfig(embedding_dim=0)
        with pytest.raises(ConfigError):
            DlrmConfig(dense_dim=0)

    def test_dim_mismatch_rejected(self, dlrm_store):
        store, _ = dlrm_store
        with pytest.raises(ConfigError):
            DlrmModel(store, DlrmConfig(embedding_dim=32))

    def test_pooling_matches_table(self, dlrm_store):
        store, table = dlrm_store
        model = DlrmModel(store, seed=0)
        ids = [1, 5, 9]
        pooled = model.pool_embeddings(ids)
        assert np.allclose(pooled, table[ids].sum(axis=0), atol=1e-4)

    def test_pooling_dedupes(self, dlrm_store):
        store, table = dlrm_store
        model = DlrmModel(store, seed=0)
        assert np.allclose(
            model.pool_embeddings([2, 2, 3]),
            table[[2, 3]].sum(axis=0),
            atol=1e-4,
        )

    def test_pooling_rejects_empty(self, dlrm_store):
        store, _ = dlrm_store
        model = DlrmModel(store, seed=0)
        with pytest.raises(ConfigError):
            model.pool_embeddings([])

    def test_predict_batch(self, dlrm_store):
        store, _ = dlrm_store
        model = DlrmModel(store, seed=0)
        dense = np.random.default_rng(2).normal(size=(4, 13))
        sparse = [[0, 1], [2], [3, 4, 5], [6]]
        probs = model.predict(dense, sparse)
        assert probs.shape == (4,)
        assert np.all((probs > 0) & (probs < 1))

    def test_predict_deterministic(self, dlrm_store):
        store, _ = dlrm_store
        model = DlrmModel(store, seed=0)
        dense = np.ones((1, 13))
        a = model.predict(dense, [[7, 8]])
        b = model.predict(dense, [[7, 8]])
        assert np.allclose(a, b)

    def test_predict_one(self, dlrm_store):
        store, _ = dlrm_store
        model = DlrmModel(store, seed=0)
        prob = model.predict_one(np.ones(13), [1, 2, 3])
        assert 0.0 < prob < 1.0

    def test_predict_rejects_mismatched_batch(self, dlrm_store):
        store, _ = dlrm_store
        model = DlrmModel(store, seed=0)
        with pytest.raises(ConfigError):
            model.predict(np.ones((2, 13)), [[1]])
