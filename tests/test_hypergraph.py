"""Tests for repro.hypergraph: structure, builders, stats, io."""

import pytest

from repro import HypergraphError, Query, QueryTrace
from repro.hypergraph import (
    Hypergraph,
    build_hypergraph,
    build_weighted_hypergraph,
    compute_stats,
    load_hypergraph,
    save_hypergraph,
    vertex_cooccurrence,
)
from repro.hypergraph.hypergraph import merge_duplicate_edges
from repro.hypergraph.stats import (
    distinct_neighbour_counts,
    hot_vertex_neighbour_breadth,
)


class TestHypergraph:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 12
        assert tiny_graph.num_edges == 7
        assert tiny_graph.total_pin_count() == 4 + 3 + 4 + 3 + 2 + 2 + 2

    def test_edge_access(self, tiny_graph):
        assert tiny_graph.edge(0) == (0, 1, 2, 3)
        assert tiny_graph.weight(0) == 1

    def test_duplicate_vertices_within_edge_are_deduped(self):
        g = Hypergraph(4, [(1, 1, 2)])
        assert g.edge(0) == (1, 2)

    def test_rejects_empty_edge(self):
        with pytest.raises(HypergraphError):
            Hypergraph(4, [()])

    def test_rejects_out_of_range_vertex(self):
        with pytest.raises(HypergraphError):
            Hypergraph(4, [(0, 4)])

    def test_rejects_nonpositive_vertex_count(self):
        with pytest.raises(HypergraphError):
            Hypergraph(0, [])

    def test_rejects_bad_weights(self):
        with pytest.raises(HypergraphError):
            Hypergraph(4, [(0, 1)], weights=[1, 2])
        with pytest.raises(HypergraphError):
            Hypergraph(4, [(0, 1)], weights=[0])

    def test_vertex_edges_incidence(self, tiny_graph):
        assert tiny_graph.vertex_edges(0) == [0, 1]
        assert tiny_graph.vertex_edges(7) == [2, 6]
        assert tiny_graph.vertex_edges(9) == [4]

    def test_vertex_edges_rejects_out_of_range(self, tiny_graph):
        with pytest.raises(HypergraphError):
            tiny_graph.vertex_edges(12)

    def test_degree_is_weighted(self):
        g = Hypergraph(3, [(0, 1), (0, 2)], weights=[3, 2])
        assert g.degree(0) == 5
        assert g.degree(1) == 3
        assert g.degrees() == [5, 3, 2]

    def test_edge_items_yields_weights(self):
        g = Hypergraph(3, [(0, 1)], weights=[4])
        items = list(g.edge_items())
        assert items == [(0, (0, 1), 4)]

    def test_subgraph_on_edges(self, tiny_graph):
        sub = tiny_graph.subgraph_on_edges([0, 2])
        assert sub.num_edges == 2
        assert sub.num_vertices == tiny_graph.num_vertices
        assert sub.edge(0) == (0, 1, 2, 3)


class TestMergeDuplicateEdges:
    def test_merges_order_insensitively(self):
        edges, weights = merge_duplicate_edges([(1, 2), (2, 1), (3,)])
        assert edges == [(1, 2), (3,)]
        assert weights == [2, 1]

    def test_dedupes_within_edge_before_merging(self):
        edges, weights = merge_duplicate_edges([(1, 2, 2), (1, 2)])
        assert edges == [(1, 2)]
        assert weights == [2]

    def test_rejects_empty(self):
        with pytest.raises(HypergraphError):
            merge_duplicate_edges([()])


class TestBuilders:
    def test_build_one_edge_per_query(self, tiny_trace):
        g = build_hypergraph(tiny_trace)
        assert g.num_edges == len(tiny_trace)
        assert g.num_vertices == tiny_trace.num_keys

    def test_min_edge_size_filters_singletons(self):
        trace = QueryTrace(5, [Query((1,)), Query((1, 2))])
        g = build_hypergraph(trace, min_edge_size=2)
        assert g.num_edges == 1

    def test_max_edges_caps_head(self, tiny_trace):
        g = build_hypergraph(tiny_trace, max_edges=3)
        assert g.num_edges == 3

    def test_all_filtered_raises(self):
        trace = QueryTrace(5, [Query((1,))])
        with pytest.raises(HypergraphError):
            build_hypergraph(trace, min_edge_size=2)

    def test_rejects_bad_min_edge_size(self, tiny_trace):
        with pytest.raises(HypergraphError):
            build_hypergraph(tiny_trace, min_edge_size=0)

    def test_weighted_builder_merges_repeats(self):
        trace = QueryTrace(
            5, [Query((1, 2)), Query((2, 1)), Query((3, 4))]
        )
        g = build_weighted_hypergraph(trace)
        assert g.num_edges == 2
        assert sorted(g.weight(e) for e in range(2)) == [1, 2]

    def test_weighted_builder_preserves_total_mass(self, criteo_small):
        history, _ = criteo_small
        plain = build_hypergraph(history)
        weighted = build_weighted_hypergraph(history)
        assert weighted.num_edges <= plain.num_edges
        total_weight = sum(
            weighted.weight(e) for e in range(weighted.num_edges)
        )
        assert total_weight == plain.num_edges


class TestStats:
    def test_compute_stats_counts(self, tiny_graph):
        stats = compute_stats(tiny_graph)
        assert stats.num_vertices == 12
        assert stats.num_edges == 7
        assert stats.max_edge_size == 4
        assert stats.isolated_vertices == 0
        assert stats.mean_edge_size == pytest.approx(20 / 7)

    def test_isolated_vertices_detected(self):
        g = Hypergraph(5, [(0, 1)])
        assert compute_stats(g).isolated_vertices == 3

    def test_as_dict_round_trips_fields(self, tiny_graph):
        d = compute_stats(tiny_graph).as_dict()
        assert d["num_vertices"] == 12
        assert set(d) >= {"mean_degree", "max_degree", "total_pins"}

    def test_vertex_cooccurrence_weighted(self):
        g = Hypergraph(4, [(0, 1), (0, 1, 2)], weights=[2, 1])
        counts = vertex_cooccurrence(g, 0)
        assert counts[1] == 3
        assert counts[2] == 1
        assert 0 not in counts

    def test_distinct_neighbour_counts(self, tiny_graph):
        counts = distinct_neighbour_counts(tiny_graph)
        assert counts[0] == 3  # 1, 2, 3
        assert counts[3] == 4  # 0, 1, 2, 7
        assert counts[8] == 1

    def test_hot_vertex_breadth_exceeds_mean(self, small_graph):
        # The paper's motivation: hot vertices co-appear with far more
        # partners than average (and more than a page holds).
        import numpy as np

        hot = hot_vertex_neighbour_breadth(small_graph, 0.05)
        overall = float(
            np.mean(distinct_neighbour_counts(small_graph))
        )
        assert hot > overall

    def test_hot_vertex_breadth_rejects_bad_fraction(self, tiny_graph):
        with pytest.raises(ValueError):
            hot_vertex_neighbour_breadth(tiny_graph, 0.0)


class TestIo:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_hypergraph(tiny_graph, path)
        loaded = load_hypergraph(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert loaded.num_edges == tiny_graph.num_edges
        assert [loaded.edge(e) for e in range(loaded.num_edges)] == [
            tiny_graph.edge(e) for e in range(tiny_graph.num_edges)
        ]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(HypergraphError):
            load_hypergraph(tmp_path / "absent.json")

    def test_load_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(HypergraphError):
            load_hypergraph(path)

    def test_load_missing_field_raises(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"num_vertices": 3, "edges": [[0, 1]]}')
        with pytest.raises(HypergraphError, match="weights"):
            load_hypergraph(path)
