"""Cross-module integration tests: the paper's claims, end to end.

Each test runs the full offline + online pipeline on a generated dataset
and checks a headline claim of the paper at reproduction scale.
"""

import pytest

from repro import (
    MaxEmbedConfig,
    ShpConfig,
    evaluate_placement,
    read_amplification,
)
from repro.core import MaxEmbedStore, build_offline_layout
from repro.serving import EngineConfig, ServingEngine


def quick_config(**overrides):
    base = dict(shp=ShpConfig(max_iterations=8, seed=0), seed=0)
    base.update(overrides)
    return MaxEmbedConfig(**base)


class TestHeadlineClaims:
    """The paper's §8.2 core results, asserted as inequalities."""

    def test_replication_improves_effective_bandwidth(self, criteo_small):
        history, live = criteo_small
        base = build_offline_layout(history, quick_config(strategy="none"))
        replicated = build_offline_layout(
            history, quick_config(replication_ratio=0.8)
        )
        base_ev = evaluate_placement(base, live)
        repl_ev = evaluate_placement(replicated, live)
        assert repl_ev.effective_fraction() > base_ev.effective_fraction()
        assert repl_ev.mean_valid_per_read() > base_ev.mean_valid_per_read()

    def test_replication_lowers_read_amplification(self, criteo_small):
        history, live = criteo_small
        base = build_offline_layout(history, quick_config(strategy="none"))
        replicated = build_offline_layout(
            history, quick_config(replication_ratio=0.8)
        )
        assert read_amplification(
            evaluate_placement(replicated, live)
        ) < read_amplification(evaluate_placement(base, live))

    def test_bandwidth_monotone_in_ratio(self, criteo_small):
        history, live = criteo_small
        fractions = []
        for ratio in (0.0, 0.2, 0.8):
            layout = build_offline_layout(
                history, quick_config(replication_ratio=ratio)
            )
            fractions.append(
                evaluate_placement(layout, live).effective_fraction()
            )
        assert fractions[0] < fractions[1] < fractions[2]

    def test_end_to_end_throughput_and_latency(self, criteo_small):
        history, live = criteo_small
        queries = list(live)
        reports = {}
        for name, ratio in (("shp", 0.0), ("me", 0.8)):
            strategy = "none" if ratio == 0 else "maxembed"
            layout = build_offline_layout(
                history,
                quick_config(strategy=strategy, replication_ratio=ratio),
            )
            engine = ServingEngine(layout, EngineConfig(cache_ratio=0.1))
            reports[name] = engine.serve_trace(queries, warmup_queries=20)
        assert (
            reports["me"].throughput_qps() > reports["shp"].throughput_qps()
        )
        assert (
            reports["me"].mean_latency_us() < reports["shp"].mean_latency_us()
        )

    def test_space_budget_is_honoured(self, criteo_small):
        history, _ = criteo_small
        for ratio in (0.1, 0.4, 0.8):
            layout = build_offline_layout(
                history, quick_config(replication_ratio=ratio)
            )
            assert layout.space_overhead() <= ratio + 0.05


class TestOnlineOptimizations:
    """§6's two optimizations, measured against the same layout."""

    @pytest.fixture(scope="class")
    def layout(self, criteo_small):
        history, _ = criteo_small
        return build_offline_layout(
            history, quick_config(replication_ratio=0.4)
        )

    def test_pipeline_reduces_latency(self, layout, criteo_small):
        _, live = criteo_small
        queries = list(live)[:150]
        latencies = {}
        for executor in ("serial", "pipelined"):
            engine = ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, executor=executor)
            )
            latencies[executor] = engine.serve_trace(queries).mean_latency_us()
        assert latencies["pipelined"] < latencies["serial"]

    def test_index_limit_reduces_selection_cost(self, layout, criteo_small):
        _, live = criteo_small
        queries = list(live)[:150]
        selection = {}
        for limit in (None, 5):
            engine = ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, index_limit=limit)
            )
            report = engine.serve_trace(queries)
            selection[limit] = report.selection_us
        assert selection[5] <= selection[None]

    def test_index_limit_keeps_most_bandwidth(self, layout, criteo_small):
        _, live = criteo_small
        full = evaluate_placement(layout, live)
        shrunk = evaluate_placement(layout, live, index_limit=5)
        assert (
            shrunk.effective_fraction()
            >= 0.9 * full.effective_fraction()
        )

    def test_onepass_faster_than_greedy_same_coverage(
        self, layout, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:100]
        cpu = {}
        pages = {}
        for selector in ("greedy", "onepass"):
            engine = ServingEngine(
                layout, EngineConfig(cache_ratio=0.0, selector=selector)
            )
            report = engine.serve_trace(queries)
            cpu[selector] = report.selection_us
            pages[selector] = report.total_pages_read
        assert cpu["onepass"] < cpu["greedy"]
        assert pages["onepass"] <= pages["greedy"] * 1.2


class TestCacheInteraction:
    def test_cache_reduces_ssd_reads(self, criteo_small):
        history, live = criteo_small
        layout = build_offline_layout(history, quick_config())
        queries = list(live)
        reads = {}
        for cache_ratio in (0.0, 0.4):
            engine = ServingEngine(
                layout, EngineConfig(cache_ratio=cache_ratio)
            )
            reads[cache_ratio] = engine.serve_trace(queries).total_pages_read
        assert reads[0.4] < reads[0.0]

    def test_maxembed_helps_even_with_cache(self, criteo_small):
        # Paper §8.3: the cache absorbs hot keys, but replication still
        # helps the cold tail.
        history, live = criteo_small
        queries = list(live)
        qps = {}
        for name, ratio in (("shp", 0.0), ("me", 0.8)):
            strategy = "none" if ratio == 0 else "maxembed"
            layout = build_offline_layout(
                history,
                quick_config(strategy=strategy, replication_ratio=ratio),
            )
            engine = ServingEngine(layout, EngineConfig(cache_ratio=0.2))
            qps[name] = engine.serve_trace(
                queries, warmup_queries=30
            ).throughput_qps()
        assert qps["me"] > qps["shp"]


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self, criteo_small):
        history, live = criteo_small

        def run():
            store = MaxEmbedStore.build(
                history, quick_config(replication_ratio=0.2)
            )
            return store.serve_trace(live)

        a = run()
        b = run()
        assert a.total_pages_read == b.total_pages_read
        assert a.makespan_us == b.makespan_us
        assert a.latencies_us == b.latencies_us
