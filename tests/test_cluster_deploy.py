"""Cluster x deployment interactions: per-shard swaps, staleness, parity.

Covers the operational loop at cluster scale: swapping one shard's
layout while the other shards keep serving, driving the swap decision
from :class:`LayoutManager.staleness_probe`, and the core property that
a 1-shard cluster is *exactly* the single-device engine.
"""

import pytest

from repro import (
    EngineConfig,
    MaxEmbedConfig,
    ServingEngine,
    ServingError,
    ShpConfig,
    build_offline_layout,
    build_sharded_layout,
)
from repro.cluster import SHARD_STRATEGIES, ClusterEngine, project_trace
from repro.core import LayoutManager


@pytest.fixture(scope="module")
def criteo_halves():
    from repro import make_trace

    trace, _ = make_trace("criteo", scale="small", seed=7)
    return trace.split(0.5)


def _config(num_shards: int, shard_strategy: str = "modulo") -> MaxEmbedConfig:
    return MaxEmbedConfig(
        strategy="maxembed",
        replication_ratio=0.2,
        shp=ShpConfig(max_iterations=8, seed=7),
        num_shards=num_shards,
        shard_strategy=shard_strategy,
        seed=7,
    )


class TestOneShardParity:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_single_shard_cluster_matches_plain_engine(
        self, criteo_halves, strategy
    ):
        """A 1-shard cluster's report equals the plain engine's exactly."""
        history, live = criteo_halves
        config = _config(1, strategy)
        sharded = build_sharded_layout(history, config)
        plain = build_offline_layout(history, config)
        # Same offline result: the identity plan projects the trace onto
        # itself, so the per-shard pipeline is the plain pipeline.
        assert sharded.layouts[0].pages() == plain.pages()
        queries = list(live)[:200]
        engine_config = EngineConfig(cache_ratio=0.1)
        cluster = ClusterEngine(sharded, engine_config).serve_trace(
            queries, warmup_queries=20
        )
        single = ServingEngine(plain, engine_config).serve_trace(
            queries, warmup_queries=20
        )
        # Byte-for-byte: the dataclass compares every field, including
        # the full latency list and the valid-per-read histogram.
        assert cluster.report == single
        assert cluster.num_shards == 1
        assert cluster.mean_fanout() == pytest.approx(1.0)


class TestShardSwap:
    @pytest.fixture
    def cluster(self, criteo_halves):
        history, _ = criteo_halves
        sharded = build_sharded_layout(history, _config(2))
        return ClusterEngine(sharded, EngineConfig(cache_ratio=0.1))

    def test_swap_one_shard_while_others_keep_serving(
        self, cluster, criteo_halves
    ):
        history, live = criteo_halves
        queries = list(live)[:120]
        before = cluster.serve_trace(queries)
        untouched_engine = cluster.engines[1]
        untouched_reads = untouched_engine.device.stats.reads
        # Rebuild shard 0's placement from the *live* window (the
        # operational re-deploy) and swap it in; shard 1 is untouched.
        shard0_live = project_trace(live, cluster.plan, 0)
        new_layout = build_offline_layout(shard0_live, _config(1))
        old_cache = cluster.engines[0].cache
        swapped = cluster.swap_shard(0, new_layout, keep_cache=True)
        assert cluster.engines[0] is swapped
        assert cluster.engines[0].cache is old_cache  # warm cache kept
        assert cluster.engines[1] is untouched_engine  # still serving
        after = cluster.serve_trace(queries)
        assert after.report.num_queries == before.report.num_queries
        # Shard 1 continued accumulating reads across the swap.
        assert untouched_engine.device.stats.reads >= untouched_reads

    def test_swap_drops_cache_on_request(self, cluster):
        old_cache = cluster.engines[0].cache
        new_layout = cluster.sharded.layouts[0]
        cluster.swap_shard(0, new_layout, keep_cache=False)
        assert cluster.engines[0].cache is not old_cache

    def test_swap_rejects_wrong_key_space(self, cluster, criteo_halves):
        history, _ = criteo_halves
        whole = build_offline_layout(history, _config(1))
        with pytest.raises(ServingError):
            cluster.swap_shard(0, whole)  # covers all keys, not shard 0's
        with pytest.raises(ServingError):
            cluster.swap_shard(5, cluster.sharded.layouts[0])


class TestStalenessDrivenSwap:
    def test_probe_then_swap_shard(self, criteo_halves):
        """LayoutManager picks the shard's best layout; the cluster swaps it."""
        history, live = criteo_halves
        sharded = build_sharded_layout(history, _config(2))
        cluster = ClusterEngine(sharded, EngineConfig(cache_ratio=0.1))
        plan = cluster.plan
        window = project_trace(live, plan, 0)
        manager = LayoutManager(sharded.layouts[0], EngineConfig())
        rebuilt = build_offline_layout(window, _config(1))
        manager.register(rebuilt, label="rebuilt")
        scores = manager.staleness_probe(window, max_queries=100)
        assert set(scores) >= {"initial", "rebuilt", "active_share_of_best"}
        assert 0.0 < scores["active_share_of_best"] <= 1.0
        # A placement rebuilt on the probe window itself can only score
        # at least as well as the historical one.
        assert scores["rebuilt"] >= scores["initial"] - 1e-9
        manager.swap(manager.versions()[1].version)
        assert manager.active_version == 1
        # Deploy the manager's chosen layout into the live cluster and
        # verify the cluster still serves the full key space.
        cluster.swap_shard(0, manager.versions()[1].layout)
        report = cluster.serve_trace(list(live)[:80])
        assert report.report.num_queries == 80
