"""Fault subsystem units: plans, injector, faulty device, circuit breaker."""

import dataclasses

import pytest

from repro import (
    BreakerConfig,
    CircuitBreaker,
    ConfigError,
    DeviceFault,
    FaultInjector,
    FaultPlan,
    FaultySsd,
    SimulatedSsd,
    StorageError,
)
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN
from repro.faults.injector import (
    BROWNOUT,
    CORRUPT,
    DEAD_PAGE,
    LATENCY_SPIKE,
    OK,
    READ_ERROR,
)
from repro.ssd import SsdProfile


def make_device(queue_depth=32, latency=10.0):
    profile = SsdProfile(
        "fault-test",
        read_latency_us=latency,
        bandwidth_gb_s=4.096,  # 1 page per microsecond
        queue_depth=queue_depth,
    )
    return SimulatedSsd(profile, page_size=4096)


class TestFaultPlan:
    def test_default_plan_is_faultless(self):
        plan = FaultPlan()
        assert not plan.any_faults()
        assert not plan.page_is_dead(0)
        assert not plan.draw_read_error(0, 0, 0)

    @pytest.mark.parametrize(
        "field", ["read_error_rate", "dead_page_rate", "corrupt_rate"]
    )
    def test_rates_validated(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})

    def test_brownout_windows_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(brownouts=((100.0, 50.0),))
        with pytest.raises(ConfigError):
            FaultPlan(brownouts=((-5.0, 50.0),))

    def test_brownout_membership_and_end(self):
        plan = FaultPlan(brownouts=((100.0, 200.0), (500.0, 600.0)))
        assert plan.in_brownout(150.0)
        assert not plan.in_brownout(200.0)  # half-open interval
        assert plan.brownout_end(150.0) == 200.0
        assert plan.brownout_end(300.0) == 300.0

    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=3, read_error_rate=0.5)
        b = FaultPlan(seed=3, read_error_rate=0.5)
        draws = [(p, att, s) for p in range(8) for att in range(3) for s in range(3)]
        assert [a.draw_read_error(*d) for d in draws] == [
            b.draw_read_error(*d) for d in draws
        ]

    def test_dead_pages_depend_only_on_seed_and_page(self):
        plan = FaultPlan(seed=11, dead_page_rate=0.3)
        dead = [p for p in range(200) if plan.page_is_dead(p)]
        assert dead  # 30 % of 200 pages: some must die
        assert len(dead) < 200
        # The draw is stable across repeated queries.
        assert dead == [p for p in range(200) if plan.page_is_dead(p)]

    def test_rate_controls_draw_frequency(self):
        plan = FaultPlan(seed=5, read_error_rate=0.2)
        hits = sum(
            plan.draw_read_error(p, 0, s)
            for p in range(40)
            for s in range(40)
        )
        assert 0.1 < hits / 1600 < 0.3

    def test_to_from_dict_round_trip(self):
        plan = FaultPlan(
            seed=9,
            read_error_rate=0.05,
            dead_page_rate=0.01,
            corrupt_rate=0.02,
            latency_spike_rate=0.1,
            latency_spike_us=750.0,
            brownouts=((10.0, 20.0),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown fault plan"):
            FaultPlan.from_dict({"seed": 1, "wat": 2})

    def test_from_spec_inline(self):
        plan = FaultPlan.from_spec(
            "seed=3,read_error=0.05,corrupt=0.01,brownout=100:200"
        )
        assert plan.seed == 3
        assert plan.read_error_rate == 0.05
        assert plan.corrupt_rate == 0.01
        assert plan.brownouts == ((100.0, 200.0),)

    def test_from_spec_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        original = FaultPlan(seed=4, dead_page_rate=0.02)
        import json

        path.write_text(json.dumps(original.to_dict()))
        assert FaultPlan.from_spec(str(path)) == original

    @pytest.mark.parametrize(
        "spec",
        ["", "read_error", "read_error=abc", "wat=1", "brownout=oops"],
    )
    def test_from_spec_rejects_malformed(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec(spec)


class TestFaultInjector:
    def test_faultless_plan_always_ok(self):
        injector = FaultInjector(FaultPlan())
        decisions = [injector.decide(p, 0.0) for p in range(50)]
        assert all(d.kind == OK for d in decisions)
        assert injector.total_injected() == 0
        assert injector.submissions == 50

    def test_dead_page_takes_precedence(self):
        plan = FaultPlan(seed=1, dead_page_rate=1.0, read_error_rate=1.0)
        injector = FaultInjector(plan)
        assert injector.decide(0, 0.0).kind == DEAD_PAGE

    def test_brownout_beats_transient_draws(self):
        plan = FaultPlan(
            seed=1, read_error_rate=1.0, brownouts=((0.0, 100.0),)
        )
        injector = FaultInjector(plan)
        decision = injector.decide(0, 50.0)
        assert decision.kind == BROWNOUT
        assert decision.retry_at_us == 100.0
        assert injector.decide(0, 150.0).kind == READ_ERROR

    def test_spike_carries_extra_latency(self):
        plan = FaultPlan(
            seed=1, latency_spike_rate=1.0, latency_spike_us=321.0
        )
        decision = FaultInjector(plan).decide(0, 0.0)
        assert decision.kind == LATENCY_SPIKE
        assert decision.extra_latency_us == 321.0
        assert not decision.fails_submission

    def test_counters_track_kinds(self):
        plan = FaultPlan(seed=2, read_error_rate=0.5)
        injector = FaultInjector(plan)
        for page in range(100):
            injector.decide(page, 0.0)
        assert injector.counters[READ_ERROR] == injector.total_injected()
        assert 20 < injector.counters[READ_ERROR] < 80

    def test_sequence_decorrelates_repeated_reads(self):
        # The same (page, attempt) coordinates must not always draw the
        # same transient fate: the submission sequence number varies it.
        plan = FaultPlan(seed=2, read_error_rate=0.5)
        injector = FaultInjector(plan)
        kinds = {injector.decide(7, 0.0, attempt=0).kind for _ in range(64)}
        assert kinds == {OK, READ_ERROR}


class TestFaultySsd:
    def test_faultless_wrapper_is_passthrough(self):
        plain = make_device()
        wrapped = FaultySsd(make_device(), FaultPlan())
        for page in range(6):
            a = plain.submit_read(page, float(page))
            b = wrapped.submit_read(page, float(page))
            assert a.completed_at_us == b.completed_at_us
        assert plain.drain() == wrapped.drain()

    def test_submit_failure_raises_device_fault(self):
        wrapped = FaultySsd(
            make_device(latency=10.0), FaultPlan(seed=1, read_error_rate=1.0)
        )
        with pytest.raises(DeviceFault) as info:
            wrapped.submit_read(3, 100.0)
        fault = info.value
        assert fault.page_id == 3
        assert fault.kind == READ_ERROR
        assert fault.failed_at_us == 110.0  # discovery costs a read latency
        assert isinstance(fault, StorageError)

    def test_brownout_failure_points_past_window(self):
        wrapped = FaultySsd(
            make_device(), FaultPlan(brownouts=((0.0, 500.0),))
        )
        with pytest.raises(DeviceFault) as info:
            wrapped.submit_read(0, 100.0)
        assert info.value.kind == BROWNOUT
        assert info.value.failed_at_us == 500.0

    def test_corrupt_read_completes_then_fails_check(self):
        wrapped = FaultySsd(
            make_device(), FaultPlan(seed=1, corrupt_rate=1.0)
        )
        completion = wrapped.submit_read(0, 0.0)
        assert wrapped.is_corrupt(completion)
        # The verdict is consumed: asking again is clean.
        assert not wrapped.is_corrupt(completion)

    def test_spiked_completion_held_back_from_poll(self):
        wrapped = FaultySsd(
            make_device(latency=10.0),
            FaultPlan(seed=1, latency_spike_rate=1.0, latency_spike_us=500.0),
        )
        completion = wrapped.submit_read(0, 0.0)
        assert completion.completed_at_us >= 510.0
        # At the un-spiked completion time nothing retires...
        assert wrapped.poll(completion.completed_at_us - 500.0) == []
        # ...but the stretched deadline delivers it.
        done = wrapped.poll(completion.completed_at_us)
        assert [c.ticket for c in done] == [completion.ticket]

    def test_drain_honours_spiked_times(self):
        wrapped = FaultySsd(
            make_device(latency=10.0),
            FaultPlan(seed=1, latency_spike_rate=1.0, latency_spike_us=500.0),
        )
        completion = wrapped.submit_read(0, 0.0)
        assert wrapped.drain() == completion.completed_at_us

    def test_fault_counters_surface_injector_state(self):
        wrapped = FaultySsd(
            make_device(), FaultPlan(seed=1, read_error_rate=1.0)
        )
        with pytest.raises(DeviceFault):
            wrapped.submit_read(0, 0.0)
        assert wrapped.fault_counters[READ_ERROR] == 1
        assert wrapped.fault_counters[CORRUPT] == 0


class TestCircuitBreaker:
    def test_config_validated(self):
        with pytest.raises(ConfigError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerConfig(recovery_timeout_us=-1.0)
        with pytest.raises(ConfigError):
            BreakerConfig(half_open_probes=0)

    def test_full_cycle_closed_open_half_open_closed(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=2, recovery_timeout_us=1000.0)
        )
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)
        breaker.record_failure(10.0)
        assert breaker.state == CLOSED  # one below threshold
        breaker.record_failure(20.0)
        assert breaker.state == OPEN
        # Open rejects until the recovery timeout elapses.
        assert not breaker.allow(500.0)
        assert breaker.allow(1020.0)  # probe admitted
        assert breaker.state == HALF_OPEN
        breaker.record_success(1030.0)
        assert breaker.state == CLOSED
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_half_open_failure_reopens_and_restarts_timer(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, recovery_timeout_us=1000.0)
        )
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert breaker.allow(1000.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure(1100.0)
        assert breaker.state == OPEN
        # The timer restarted at the half-open failure.
        assert not breaker.allow(1999.0)
        assert breaker.allow(2100.0)

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED  # streak broken by the success

    def test_multiple_probes_required_to_close(self):
        breaker = CircuitBreaker(
            BreakerConfig(
                failure_threshold=1,
                recovery_timeout_us=100.0,
                half_open_probes=2,
            )
        )
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_success(110.0)
        assert breaker.state == HALF_OPEN  # one probe is not enough
        breaker.record_success(120.0)
        assert breaker.state == CLOSED

    def test_transitions_are_timestamped_records(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1))
        breaker.record_failure(42.0)
        (transition,) = breaker.transitions
        assert dataclasses.astuple(transition) == (42.0, CLOSED, OPEN)
