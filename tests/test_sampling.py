"""Tests for repro.hypergraph.sampling."""

import pytest

from repro import HypergraphError, Query, QueryTrace, WorkloadError
from repro.hypergraph import (
    Hypergraph,
    head_trace,
    sample_edges,
    sample_trace,
)


@pytest.fixture
def graph():
    return Hypergraph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])


@pytest.fixture
def trace():
    return QueryTrace(10, [Query((k, (k + 1) % 10)) for k in range(10)])


class TestSampleEdges:
    def test_fraction_of_edges(self, graph):
        sampled = sample_edges(graph, 0.4, seed=0)
        assert sampled.num_edges == 2
        assert sampled.num_vertices == graph.num_vertices

    def test_full_fraction_returns_same(self, graph):
        assert sample_edges(graph, 1.0) is graph

    def test_deterministic(self, graph):
        a = sample_edges(graph, 0.6, seed=5)
        b = sample_edges(graph, 0.6, seed=5)
        assert list(a.edges()) == list(b.edges())

    def test_minimum_one_edge(self, graph):
        sampled = sample_edges(graph, 0.01, seed=0)
        assert sampled.num_edges == 1

    def test_rejects_bad_fraction(self, graph):
        with pytest.raises(HypergraphError):
            sample_edges(graph, 0.0)
        with pytest.raises(HypergraphError):
            sample_edges(graph, 1.5)

    def test_weights_preserved(self):
        g = Hypergraph(3, [(0, 1), (1, 2)], weights=[5, 7])
        sampled = sample_edges(g, 0.5, seed=1)
        assert sampled.weight(0) in (5, 7)


class TestSampleTrace:
    def test_fraction_of_queries(self, trace):
        sampled = sample_trace(trace, 0.3, seed=0)
        assert len(sampled) == 3
        assert sampled.num_keys == trace.num_keys

    def test_order_preserved(self, trace):
        sampled = sample_trace(trace, 0.5, seed=0)
        originals = [q.keys for q in trace]
        positions = [originals.index(q.keys) for q in sampled]
        assert positions == sorted(positions)

    def test_full_fraction_returns_same(self, trace):
        assert sample_trace(trace, 1.0) is trace

    def test_rejects_bad_fraction(self, trace):
        with pytest.raises(WorkloadError):
            sample_trace(trace, -0.1)


class TestHeadTrace:
    def test_prefix(self, trace):
        head = head_trace(trace, 0.2)
        assert len(head) == 2
        assert head.queries[0].keys == (0, 1)

    def test_minimum_one(self, trace):
        assert len(head_trace(trace, 0.001)) == 1

    def test_rejects_bad_fraction(self, trace):
        with pytest.raises(WorkloadError):
            head_trace(trace, 0.0)
