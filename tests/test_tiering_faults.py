"""Tiering x faults interplay: the pinned DRAM tier under device errors.

Tier-1 keys never touch the SSD, so they must be structurally immune to
injected read faults: a fully pinned query issues no reads, suffers no
retries, and can never lose a key.  For mixed queries, the fault-path
loss accounting (retries, recoveries, missing keys) must apply only to
the residue that actually reached the device, and the usual
key-conservation invariant must hold with the tier as a third serving
source alongside the cache and the SSD.
"""

import os

import pytest

from repro import (
    EngineConfig,
    FaultPlan,
    PageLayout,
    Query,
    ServingEngine,
)
from repro.serving import RetryPolicy
from repro.tiering import TierPlan

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


@pytest.fixture
def hot_cold_layout():
    """Keys 0/1/4/5 carry a replica (recoverable); 2/3/6/7 are cold."""
    return PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4, 1, 5)],
    )


@pytest.fixture
def stream():
    return [Query((k % 8, (k + 1) % 8, (k + 5) % 8)) for k in range(300)]


def tiered_faulty_engine(layout, pinned=(0, 1), seed=FAULT_SEED):
    plan = TierPlan(
        num_keys=8, tier_ratio=0.25, pinned=tuple(pinned), source="explicit"
    )
    return ServingEngine(
        layout,
        EngineConfig(
            cache_ratio=0.0,
            threads=1,
            tier_mode="pinned",
            tier_plan=plan,
            fault_plan=FaultPlan(seed=seed, read_error_rate=0.5),
            retry=RetryPolicy(max_retries=1),
        ),
    )


class TestTierFaultImmunity:
    def test_fully_pinned_query_never_touches_device(self, hot_cold_layout):
        engine = tiered_faulty_engine(hot_cold_layout)
        for _ in range(20):  # exhaust plenty of fault-plan draws
            result = engine.serve_query(Query((0, 1, 0)))
            assert result.tier_hits == 2
            assert result.pages_read == 0
            assert result.retries == 0
            assert result.failed_reads == 0
            assert result.missing_keys == 0

    def test_losses_confined_to_device_residue(
        self, hot_cold_layout, stream
    ):
        engine = tiered_faulty_engine(hot_cold_layout)
        for i, query in enumerate(stream):
            result = engine.serve_query(query, start_us=float(i))
            residue = result.requested_keys - result.tier_hits
            assert 0 <= result.tier_hits <= result.requested_keys
            assert result.missing_keys <= residue
            assert result.recovered_keys <= residue - result.missing_keys
            # Conservation: every distinct key lands in exactly one of
            # tier / cache / SSD-served / missing.
            assert (
                result.tier_hits
                + result.cache_hits
                + result.ssd_keys
                + result.missing_keys
                == result.requested_keys
            )

    def test_faults_still_fire_on_residue(self, hot_cold_layout, stream):
        engine = tiered_faulty_engine(hot_cold_layout)
        report = engine.serve_trace(stream)
        assert report.total_tier_hits > 0
        # At a 50% error rate the unpinned keys must see device trouble.
        assert report.total_retries > 0
        assert report.total_recovered_keys + report.total_missing_keys > 0

    def test_tier_shrinks_fault_surface(self, hot_cold_layout, stream):
        faulted = ServingEngine(
            hot_cold_layout,
            EngineConfig(
                cache_ratio=0.0,
                threads=1,
                fault_plan=FaultPlan(seed=FAULT_SEED, read_error_rate=0.5),
                retry=RetryPolicy(max_retries=1),
            ),
        ).serve_trace(stream)
        tiered = tiered_faulty_engine(hot_cold_layout).serve_trace(stream)
        # Pinned keys remove page reads, so fewer reads can fail at all.
        assert tiered.total_pages_read < faulted.total_pages_read

    @pytest.mark.parametrize("seed", [FAULT_SEED, FAULT_SEED + 1, FAULT_SEED + 2])
    def test_deterministic_per_seed(self, hot_cold_layout, stream, seed):
        first = tiered_faulty_engine(hot_cold_layout, seed=seed).serve_trace(
            stream
        )
        second = tiered_faulty_engine(hot_cold_layout, seed=seed).serve_trace(
            stream
        )
        assert first.latencies_us == second.latencies_us
        assert first.total_retries == second.total_retries
        assert first.total_tier_hits == second.total_tier_hits
        assert first.total_missing_keys == second.total_missing_keys

    def test_fault_free_tiered_engine_has_clean_counters(
        self, hot_cold_layout, stream
    ):
        plan = TierPlan(
            num_keys=8, tier_ratio=0.25, pinned=(0, 1), source="explicit"
        )
        engine = ServingEngine(
            hot_cold_layout,
            EngineConfig(
                cache_ratio=0.0, threads=1, tier_mode="pinned", tier_plan=plan
            ),
        )
        report = engine.serve_trace(stream)
        assert report.total_tier_hits > 0
        assert report.total_retries == 0
        assert report.total_failed_reads == 0
        assert report.total_missing_keys == 0
