"""Property-based tests (hypothesis) on the core data structures.

Each property pins an invariant the whole system leans on:

* partitioners always produce complete, capacity-respecting partitions;
* every replication strategy produces a layout that covers every key and
  never exceeds page capacity;
* page selection always covers the query, with any selector, any index
  limit, and any layout;
* the LRU cache never exceeds capacity and obeys updateOnRead semantics;
* the device model is monotone: completions never precede submissions and
  never beat the latency floor.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import LruCache, PageLayout, Query, QueryTrace
from repro.hypergraph import Hypergraph, build_weighted_hypergraph
from repro.partition import (
    MultilevelConfig,
    MultilevelPartitioner,
    RandomPartitioner,
    ShpConfig,
    ShpPartitioner,
    StreamingPartitioner,
    VanillaPlacement,
)
from repro.placement import ForwardIndex, InvertIndex
from repro.replication import (
    ConnectivityPriorityStrategy,
    FprStrategy,
    RppStrategy,
)
from repro.serving.selection import GreedySetCoverSelector, OnePassSelector
from repro.ssd import SimulatedSsd, SsdProfile

# -- strategies ------------------------------------------------------------------


@st.composite
def hypergraphs(draw, max_vertices=40, max_edges=25):
    """Random small hypergraphs."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(8, n)))
        edge = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        edges.append(tuple(edge))
    return Hypergraph(n, edges)


@st.composite
def traces(draw, max_keys=30, max_queries=15):
    n = draw(st.integers(min_value=2, max_value=max_keys))
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    queries = []
    for _ in range(num_queries):
        size = draw(st.integers(min_value=1, max_value=min(10, n)))
        keys = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
            )
        )
        queries.append(Query(tuple(keys)))
    return QueryTrace(n, queries)


PARTITIONERS = [
    VanillaPlacement(),
    RandomPartitioner(seed=0),
    ShpPartitioner(ShpConfig(max_iterations=3, kl_passes=2, seed=0)),
    MultilevelPartitioner(MultilevelConfig(refine_rounds=1, seed=0)),
    StreamingPartitioner(),
]


# -- partition properties -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(graph=hypergraphs(), capacity=st.integers(min_value=1, max_value=8))
def test_partitions_are_complete_and_balanced(graph, capacity):
    for partitioner in PARTITIONERS:
        result = partitioner.partition(graph, capacity)
        assert len(result.assignment) == graph.num_vertices
        assert max(result.cluster_sizes()) <= capacity
        assert sum(result.cluster_sizes()) == graph.num_vertices


@settings(max_examples=25, deadline=None)
@given(graph=hypergraphs())
def test_shp_never_worse_than_its_random_start(graph):
    from repro.partition import fanout_objective

    capacity = 4
    config = ShpConfig(max_iterations=4, kl_passes=2, seed=1)
    shp = ShpPartitioner(config).partition(graph, capacity)
    # SHP must produce a valid partition whose fanout is bounded by the
    # trivial worst case (every edge fully scattered).
    worst = sum(
        (len(e) - 1) * graph.weight(i)
        for i, e in enumerate(graph.edges())
    )
    assert 0 <= fanout_objective(graph, shp.assignment) <= worst


# -- replication properties --------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    trace=traces(),
    ratio=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
    capacity=st.sampled_from([2, 4, 8]),
)
def test_every_strategy_yields_valid_layouts(trace, ratio, capacity):
    graph = build_weighted_hypergraph(trace)
    partitioner = ShpPartitioner(
        ShpConfig(max_iterations=2, kl_passes=1, seed=0)
    )
    for strategy in (
        ConnectivityPriorityStrategy(partitioner),
        RppStrategy(partitioner),
        FprStrategy(partitioner),
    ):
        layout = strategy.build_layout(graph, capacity, ratio)
        # Constructor enforces coverage/capacity; re-assert key facts.
        assert layout.num_keys == trace.num_keys
        assert max(len(p) for p in layout.pages()) <= capacity
        counts = layout.replica_counts()
        assert min(counts) >= 1


# -- selection properties ----------------------------------------------------------


@st.composite
def layouts_and_queries(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    capacity = draw(st.sampled_from([2, 4, 8]))
    # Base pages: sequential coverage.
    pages = [
        tuple(range(start, min(start + capacity, n)))
        for start in range(0, n, capacity)
    ]
    # Replica pages: random subsets.
    extra = draw(st.integers(min_value=0, max_value=3))
    for _ in range(extra):
        size = draw(st.integers(min_value=1, max_value=min(capacity, n)))
        page = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        pages.append(tuple(page))
    layout = PageLayout(
        n, capacity, pages, num_base_pages=(n + capacity - 1) // capacity
    )
    query_size = draw(st.integers(min_value=1, max_value=min(10, n)))
    keys = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=query_size,
            max_size=query_size,
            unique=True,
        )
    )
    limit = draw(st.sampled_from([None, 1, 2, 5]))
    return layout, keys, limit


@settings(max_examples=60, deadline=None)
@given(data=layouts_and_queries())
def test_selectors_always_cover_the_query(data):
    layout, keys, limit = data
    forward = ForwardIndex.from_layout(layout, limit=limit)
    invert = InvertIndex.from_layout(layout)
    for selector in (
        GreedySetCoverSelector(forward, invert),
        OnePassSelector(forward, invert),
    ):
        outcome = selector.select(keys)
        assert outcome.covered_keys() >= set(keys)
        # Each chosen page must serve at least one newly covered key.
        for step in outcome.steps:
            assert step.covered
        # No page chosen twice.
        assert len(outcome.pages) == len(set(outcome.pages))


@settings(max_examples=30, deadline=None)
@given(data=layouts_and_queries())
def test_onepass_reads_bounded_by_query_size(data):
    layout, keys, limit = data
    forward = ForwardIndex.from_layout(layout, limit=limit)
    invert = InvertIndex.from_layout(layout)
    outcome = OnePassSelector(forward, invert).select(keys)
    assert len(outcome.steps) <= len(set(keys))


# -- cache properties ------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["get", "put"]),
            st.integers(min_value=0, max_value=12),
        ),
        max_size=60,
    ),
)
def test_lru_never_exceeds_capacity(capacity, ops):
    cache = LruCache(capacity)
    for op, key in ops:
        if op == "put":
            cache.put(key, key)
        else:
            cache.get(key)
        assert len(cache) <= capacity
    assert cache.stats.lookups == sum(1 for op, _ in ops if op == "get")


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=20), min_size=1, max_size=40
    )
)
def test_lru_most_recent_reads_survive(keys):
    capacity = 4
    cache = LruCache(capacity)
    for key in keys:
        cache.put(key, key)
        cache.get(key)
    # The last `capacity` *distinct* keys must be resident.
    recent = list(dict.fromkeys(reversed(keys)))[:capacity]
    for key in recent:
        assert cache.peek(key) == key


# -- device properties ------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    submissions=st.lists(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_device_completions_follow_service_model(submissions):
    profile = SsdProfile(
        "prop", read_latency_us=7.0, bandwidth_gb_s=0.1, queue_depth=1024
    )
    device = SimulatedSsd(profile, page_size=4096)
    ordered = sorted(submissions)
    completions = [
        device.submit_read(i, t) for i, t in enumerate(ordered)
    ]
    for t, completion in zip(ordered, completions):
        assert completion.completed_at_us >= t + profile.read_latency_us
    # Aggregate throughput can never beat the bandwidth ceiling.
    span = completions[-1].completed_at_us - ordered[0]
    max_pages = span * 1e-6 * profile.bandwidth_gb_s * 1e9 / 4096 + 1
    assert len(completions) <= max_pages + 1


@settings(max_examples=30, deadline=None)
@given(
    num_keys=st.integers(min_value=4, max_value=30),
    ratio=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_embedding_cache_capacity_formula(num_keys, ratio):
    import math

    from repro import EmbeddingCache

    cache = EmbeddingCache(num_keys, ratio)
    expected = math.ceil(num_keys * ratio)
    assert cache.capacity == expected
    assert cache.enabled == (expected > 0)
