"""Tests for repro.partition: result container, metrics, all partitioners."""

import pytest

from repro import (
    PartitionError,
    RandomPartitioner,
    ShpConfig,
    ShpPartitioner,
    VanillaPlacement,
)
from repro.hypergraph import Hypergraph
from repro.partition import (
    PartitionResult,
    edge_connectivities,
    fanout_objective,
    imbalance,
    mean_connectivity,
    total_connectivity,
)
from repro.partition.base import (
    balanced_sizes,
    required_clusters,
    sequential_assignment,
    validate_against_graph,
)


class TestPartitionResult:
    def test_clusters_materialize(self):
        result = PartitionResult([0, 1, 0, 1], 2, 2)
        assert result.clusters() == [[0, 2], [1, 3]]
        assert result.cluster_sizes() == [2, 2]
        assert result.cluster_of(2) == 0
        assert result.num_vertices == 4

    def test_rejects_over_capacity(self):
        with pytest.raises(PartitionError):
            PartitionResult([0, 0, 0], 1, 2)

    def test_rejects_invalid_cluster_id(self):
        with pytest.raises(PartitionError):
            PartitionResult([0, 2], 2, 4)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(PartitionError):
            PartitionResult([0], 1, 0)

    def test_allows_empty_clusters(self):
        result = PartitionResult([0, 0], 3, 2)
        assert result.cluster_sizes() == [2, 0, 0]


class TestBaseHelpers:
    @pytest.mark.parametrize(
        "n,cap,expected", [(10, 4, 3), (16, 16, 1), (17, 16, 2), (1, 5, 1)]
    )
    def test_required_clusters(self, n, cap, expected):
        assert required_clusters(n, cap) == expected

    def test_required_clusters_rejects_bad_args(self):
        with pytest.raises(PartitionError):
            required_clusters(0, 4)
        with pytest.raises(PartitionError):
            required_clusters(4, 0)

    def test_sequential_assignment_blocks(self):
        assignment = sequential_assignment(10, 4, 3)
        assert assignment == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_sequential_assignment_respects_capacity(self):
        with pytest.raises(PartitionError):
            sequential_assignment(10, 2, 3)

    def test_balanced_sizes_sums(self):
        sizes = balanced_sizes(10, 3)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_validate_against_graph(self, tiny_graph):
        result = VanillaPlacement().partition(tiny_graph, 4)
        assert validate_against_graph(result, tiny_graph) is result

    def test_validate_against_graph_rejects_mismatch(self, tiny_graph):
        bad = PartitionResult([0, 0], 1, 4)
        with pytest.raises(PartitionError):
            validate_against_graph(bad, tiny_graph)

    def test_resolve_num_clusters_rejects_too_few(self, tiny_graph):
        with pytest.raises(PartitionError):
            VanillaPlacement().partition(tiny_graph, 4, num_clusters=2)


class TestMetrics:
    def test_edge_connectivities(self, tiny_graph):
        # Put community {0..3} in cluster 0, {4..7} in 1, rest in 2.
        assignment = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
        lambdas = edge_connectivities(tiny_graph, assignment)
        assert lambdas[0] == 1  # (0,1,2,3) all in cluster 0
        assert lambdas[6] == 2  # (3,7) straddles clusters 0 and 1

    def test_total_and_fanout_relate(self, tiny_graph):
        assignment = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
        total = total_connectivity(tiny_graph, assignment)
        fanout = fanout_objective(tiny_graph, assignment)
        weight_sum = sum(
            tiny_graph.weight(e) for e in range(tiny_graph.num_edges)
        )
        assert total - fanout == weight_sum

    def test_weighted_objective(self):
        g = Hypergraph(4, [(0, 1), (2, 3)], weights=[5, 1])
        split = [0, 1, 0, 0]  # cuts the weight-5 edge only
        assert fanout_objective(g, split) == 5

    def test_mean_connectivity_weighted(self):
        g = Hypergraph(4, [(0, 1), (2, 3)], weights=[3, 1])
        assignment = [0, 1, 0, 0]
        assert mean_connectivity(g, assignment) == pytest.approx(
            (2 * 3 + 1 * 1) / 4
        )

    def test_metrics_reject_wrong_length(self, tiny_graph):
        with pytest.raises(PartitionError):
            edge_connectivities(tiny_graph, [0, 1])

    def test_imbalance_perfect(self):
        assert imbalance([0, 0, 1, 1], 2) == 0.0

    def test_imbalance_skewed(self):
        assert imbalance([0, 0, 0, 1], 2) == pytest.approx(0.5)

    def test_imbalance_rejects_bad_cluster_count(self):
        with pytest.raises(PartitionError):
            imbalance([0], 0)


class TestVanilla:
    def test_sequential_layout(self, tiny_graph):
        result = VanillaPlacement().partition(tiny_graph, 4)
        assert result.assignment == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
        assert result.num_clusters == 3

    def test_respects_explicit_cluster_count(self, tiny_graph):
        result = VanillaPlacement().partition(tiny_graph, 4, num_clusters=4)
        assert result.num_clusters == 4
        assert max(result.cluster_sizes()) <= 4


class TestRandom:
    def test_balanced_and_complete(self, small_graph):
        result = RandomPartitioner(seed=1).partition(small_graph, 16)
        assert imbalance(result.assignment, result.num_clusters) <= 0.2
        assert len(result.assignment) == small_graph.num_vertices

    def test_deterministic_under_seed(self, tiny_graph):
        a = RandomPartitioner(seed=9).partition(tiny_graph, 4)
        b = RandomPartitioner(seed=9).partition(tiny_graph, 4)
        assert a.assignment == b.assignment

    def test_different_seeds_differ(self, small_graph):
        a = RandomPartitioner(seed=1).partition(small_graph, 16)
        b = RandomPartitioner(seed=2).partition(small_graph, 16)
        assert a.assignment != b.assignment


class TestShp:
    def test_recovers_planted_communities(self, tiny_graph):
        result = ShpPartitioner(ShpConfig(seed=0)).partition(tiny_graph, 4)
        # Communities {0,1,2,3} and {4,5,6,7} should each land on one page.
        assert len({result.assignment[v] for v in (0, 1, 2, 3)}) == 1
        assert len({result.assignment[v] for v in (4, 5, 6, 7)}) == 1

    def test_beats_random_on_structured_trace(self, small_graph):
        random_result = RandomPartitioner(seed=0).partition(small_graph, 16)
        shp_result = ShpPartitioner(ShpConfig(seed=0)).partition(
            small_graph, 16
        )
        assert fanout_objective(
            small_graph, shp_result.assignment
        ) < fanout_objective(small_graph, random_result.assignment)

    def test_balance_is_preserved(self, small_graph):
        result = ShpPartitioner(ShpConfig(seed=0)).partition(small_graph, 16)
        assert max(result.cluster_sizes()) <= 16
        assert imbalance(result.assignment, result.num_clusters) <= 0.2

    def test_deterministic_under_seed(self, tiny_graph):
        a = ShpPartitioner(ShpConfig(seed=4)).partition(tiny_graph, 4)
        b = ShpPartitioner(ShpConfig(seed=4)).partition(tiny_graph, 4)
        assert a.assignment == b.assignment

    def test_zero_iterations_is_random_but_valid(self, tiny_graph):
        result = ShpPartitioner(
            ShpConfig(max_iterations=0, seed=0)
        ).partition(tiny_graph, 4)
        assert sorted(result.cluster_sizes()) == [4, 4, 4]

    def test_single_cluster_graph(self):
        g = Hypergraph(3, [(0, 1, 2)])
        result = ShpPartitioner().partition(g, 4)
        assert result.num_clusters == 1
        assert result.assignment == [0, 0, 0]

    def test_finer_partition_request(self, small_graph):
        finer = small_graph.num_vertices // 16 + 10
        result = ShpPartitioner(ShpConfig(seed=0)).partition(
            small_graph, 16, num_clusters=finer
        )
        assert result.num_clusters == finer
        assert max(result.cluster_sizes()) <= 16

    def test_rejects_negative_iterations(self):
        with pytest.raises(PartitionError):
            ShpConfig(max_iterations=-1)

    def test_more_iterations_never_hurt_much(self, small_graph):
        quick = ShpPartitioner(ShpConfig(max_iterations=2, seed=0)).partition(
            small_graph, 16
        )
        long = ShpPartitioner(ShpConfig(max_iterations=30, seed=0)).partition(
            small_graph, 16
        )
        assert fanout_objective(small_graph, long.assignment) <= (
            fanout_objective(small_graph, quick.assignment) * 1.05
        )
