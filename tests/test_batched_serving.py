"""Serving over the device command paths: paged, batched, ndp.

Contracts:

* ``device_command_path="paged"`` (the default) is bit-identical to the
  historical per-page serving — adding the batched machinery must not
  perturb a single timestamp (hypothesis parity on engine and cluster);
* with zero submit overhead, ``batched`` is bit-identical to ``serial``
  paged serving — batching only moves who pays the overhead;
* with a non-zero overhead, batched serving is strictly faster;
* the ``ndp`` path auto-upgrades a plain profile to an NDP one, reads
  the same pages, and covers every key;
* all three paths compose with the overload degrade ladder.
"""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    ClusterEngine,
    ConfigError,
    EngineConfig,
    MaxEmbedConfig,
    PageLayout,
    Query,
    ServingEngine,
    ServingError,
)
from repro.overload import AdmissionConfig, BrownoutConfig
from repro.serving import (
    BatchedExecutor,
    NdpExecutor,
    OpenLoopSimulator,
    SerialExecutor,
    build_gather_command,
)
from repro.ssd import P5800X, P5800X_NDP
from repro.types import EmbeddingSpec

OVERHEAD_P5800X = dataclasses.replace(P5800X, submit_overhead_us=1.0)


@st.composite
def layouts_and_traces(draw):
    """Small replicated layouts plus a short query stream."""
    n = draw(st.integers(min_value=4, max_value=20))
    capacity = draw(st.sampled_from([2, 4]))
    pages = [
        tuple(range(start, min(start + capacity, n)))
        for start in range(0, n, capacity)
    ]
    num_base = len(pages)
    extra = draw(st.integers(min_value=0, max_value=3))
    for _ in range(extra):
        size = draw(st.integers(min_value=1, max_value=min(capacity, n)))
        page = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        pages.append(tuple(page))
    layout = PageLayout(n, capacity, pages, num_base_pages=num_base)
    num_queries = draw(st.integers(min_value=1, max_value=8))
    queries = []
    for _ in range(num_queries):
        size = draw(st.integers(min_value=1, max_value=min(6, n)))
        keys = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        queries.append(Query(tuple(keys)))
    return layout, queries


def engine_for(layout, **overrides):
    defaults = dict(spec=EmbeddingSpec(dim=8), cache_ratio=0.0)
    defaults.update(overrides)
    return ServingEngine(layout, EngineConfig(**defaults))


class TestConfigValidation:
    def test_engine_rejects_unknown_path(self):
        with pytest.raises(ServingError, match="device_command_path"):
            EngineConfig(device_command_path="dma")

    def test_core_config_rejects_unknown_path(self):
        with pytest.raises(ConfigError, match="device command path"):
            MaxEmbedConfig(device_command_path="dma")

    def test_executor_selection(self):
        assert isinstance(
            EngineConfig(device_command_path="batched"), EngineConfig
        )
        layout = PageLayout(4, 2, [(0, 1), (2, 3)], num_base_pages=2)
        assert isinstance(
            engine_for(layout, device_command_path="batched").executor,
            BatchedExecutor,
        )
        assert isinstance(
            engine_for(layout, device_command_path="ndp").executor,
            NdpExecutor,
        )
        assert isinstance(
            engine_for(layout, executor="serial").executor, SerialExecutor
        )


class TestPagedDefaultParity:
    """The default path must not notice the batched machinery exists."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=layouts_and_traces())
    def test_engine_paged_equals_batched_at_zero_overhead(self, data):
        layout, queries = data
        serial = engine_for(layout, executor="serial")
        batched = engine_for(layout, device_command_path="batched")
        assert serial.serve_trace(queries) == batched.serve_trace(queries)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=layouts_and_traces())
    def test_engine_paged_is_deterministic(self, data):
        layout, queries = data
        first = engine_for(layout).serve_trace(queries)
        second = engine_for(layout).serve_trace(queries)
        assert first == second

    def test_fixture_trace_parity(self, maxembed_layout_small, criteo_small):
        _, live = criteo_small
        queries = list(live)[:300]
        serial = ServingEngine(
            maxembed_layout_small, EngineConfig(executor="serial")
        )
        batched = ServingEngine(
            maxembed_layout_small,
            EngineConfig(device_command_path="batched"),
        )
        assert serial.serve_trace(queries) == batched.serve_trace(queries)


class TestBatchedAmortization:
    def test_batched_faster_with_overhead(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:300]
        serial = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                executor="serial", profile=OVERHEAD_P5800X, threads=1
            ),
        )
        batched = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                device_command_path="batched",
                profile=OVERHEAD_P5800X,
                threads=1,
            ),
        )
        fast = batched.serve_trace(queries)
        slow = serial.serve_trace(queries)
        assert fast.throughput_qps() > slow.throughput_qps()
        assert fast.total_pages_read == slow.total_pages_read

    def test_single_page_query_pays_one_overhead_either_way(self):
        layout = PageLayout(2, 2, [(0, 1)], num_base_pages=1)
        serial = engine_for(
            layout, executor="serial", profile=OVERHEAD_P5800X
        )
        batched = engine_for(
            layout, device_command_path="batched", profile=OVERHEAD_P5800X
        )
        query = [Query((0, 1))]
        assert serial.serve_trace(query) == batched.serve_trace(query)


class TestNdpServing:
    def test_plain_profile_auto_upgraded(self):
        layout = PageLayout(4, 2, [(0, 1), (2, 3)], num_base_pages=2)
        engine = engine_for(layout, device_command_path="ndp")
        assert engine.device.profile.supports_gather
        # An explicit NDP profile is kept as-is.
        explicit = engine_for(
            layout, device_command_path="ndp", profile=P5800X_NDP
        )
        assert explicit.device.profile is P5800X_NDP

    def test_ndp_reads_same_pages_and_covers(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:300]
        paged = ServingEngine(
            maxembed_layout_small, EngineConfig(executor="serial")
        )
        ndp = ServingEngine(
            maxembed_layout_small, EngineConfig(device_command_path="ndp")
        )
        paged_report = paged.serve_trace(queries)
        ndp_report = ndp.serve_trace(queries)
        assert ndp_report.total_pages_read == paged_report.total_pages_read
        assert ndp_report.coverage() == 1.0
        assert ndp.device.stats.gathers > 0

    def test_gather_command_reflects_selection(self, maxembed_layout_small):
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(device_command_path="ndp"),
        )
        outcome = engine.selector.select([0, 1, 2, 3])
        spec = EmbeddingSpec(dim=8)
        command = build_gather_command(outcome, spec)
        assert command.page_ids == tuple(outcome.pages)
        assert command.wanted_keys == sum(outcome.covered_counts)
        assert command.payload_bytes == (
            command.wanted_keys * spec.embedding_bytes
        )

    def test_ndp_bus_bytes_below_paged(
        self, maxembed_layout_small, criteo_small
    ):
        """NDP ships only the payload; the paged bus moves whole pages."""
        _, live = criteo_small
        queries = list(live)[:300]
        paged = ServingEngine(
            maxembed_layout_small, EngineConfig(executor="serial")
        )
        ndp = ServingEngine(
            maxembed_layout_small, EngineConfig(device_command_path="ndp")
        )
        paged.serve_trace(queries)
        ndp.serve_trace(queries)
        assert ndp.device.stats.bytes_read < paged.device.stats.bytes_read


class TestClusterPaths:
    @pytest.fixture(scope="class")
    def sharded(self, request):
        from repro import build_sharded_layout

        criteo_small = request.getfixturevalue("criteo_small")
        history, _ = criteo_small
        return build_sharded_layout(
            history,
            MaxEmbedConfig(
                strategy="maxembed",
                replication_ratio=0.2,
                num_shards=2,
                seed=7,
            ),
        )

    def test_cluster_paged_equals_batched(self, sharded, criteo_small):
        _, live = criteo_small
        queries = list(live)[:200]
        paged = ClusterEngine(sharded, EngineConfig(executor="serial"))
        batched = ClusterEngine(
            sharded, EngineConfig(device_command_path="batched")
        )
        paged_report = paged.serve_trace(queries)
        batched_report = batched.serve_trace(queries)
        assert paged_report == batched_report

    def test_cluster_ndp_serves(self, sharded, criteo_small):
        _, live = criteo_small
        queries = list(live)[:200]
        engine = ClusterEngine(
            sharded, EngineConfig(device_command_path="ndp")
        )
        report = engine.serve_trace(queries)
        assert report.coverage() == 1.0


class TestDegradeLadder:
    @pytest.mark.parametrize("path", ["paged", "batched", "ndp"])
    def test_openloop_degrades_and_accounts(
        self, path, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:400]
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(device_command_path=path, threads=1),
        )
        sim = OpenLoopSimulator(
            engine,
            admission=AdmissionConfig(capacity=16),
            brownout=BrownoutConfig(),
        )
        report = sim.run(queries, offered_qps=500_000.0)
        data = report.as_dict()
        # Warm-up head excluded; everything measured must be accounted.
        offered = data["offered"]
        assert 0 < offered <= len(queries)
        assert data["completed"] + data["shed_total"] == offered
        # The arrival rate is far beyond capacity: the ladder must engage.
        assert data["shed_total"] > 0 or data["degraded_completions"] > 0
