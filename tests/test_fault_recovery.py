"""Degraded serving: fault-free parity, recovery accounting, differentials.

The recovery contract under test:

* with no fault plan — or a plan that injects nothing — serving is
  bit-identical to the plain executors (the whole fault subsystem stays
  out of the hot path);
* under injected faults, every key recoverable via a surviving replica
  page is served, every unrecoverable key is reported ``missing``, and
  no key is ever silently dropped or double-counted (the accounting
  identity ``requested == cache_hits + ssd_keys + missing`` holds for
  every query).
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import (
    EngineConfig,
    FaultPlan,
    PageLayout,
    Query,
    RetryPolicy,
    ServingEngine,
)

# CI's chaos job sweeps this to replay the suite under different fault
# draws; the properties under test are seed-independent.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

# A small layout with real replicas: four base pages partition the 16
# keys, two replica pages duplicate one key from each base page.
REPLICATED_PAGES = [
    (0, 1, 2, 3),
    (4, 5, 6, 7),
    (8, 9, 10, 11),
    (12, 13, 14, 15),
    (0, 4, 8, 12),
    (1, 5, 9, 13),
]


def replicated_layout() -> PageLayout:
    return PageLayout(16, 4, REPLICATED_PAGES, num_base_pages=4)


def holders(key: int):
    """All pages holding ``key`` in the replicated layout."""
    return [p for p, page in enumerate(REPLICATED_PAGES) if key in page]


class TestFaultFreeParity:
    @pytest.mark.parametrize("executor", ["pipelined", "serial"])
    def test_no_op_plan_is_bit_identical(
        self, executor, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        baseline = ServingEngine(
            maxembed_layout_small, EngineConfig(executor=executor)
        )
        # FaultPlan() injects nothing, but its mere presence routes every
        # query through the recovery executor — which must reproduce the
        # plain executor's timing exactly.
        guarded = ServingEngine(
            maxembed_layout_small,
            EngineConfig(executor=executor, fault_plan=FaultPlan()),
        )
        queries = list(live)[:200]
        assert baseline.serve_trace(queries) == guarded.serve_trace(queries)

    def test_no_plan_leaves_fault_surface_dark(self, maxembed_layout_small):
        engine = ServingEngine(maxembed_layout_small, EngineConfig())
        assert engine.fault_counters is None

    def test_zero_rate_report_shows_no_fault_activity(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small, EngineConfig(fault_plan=FaultPlan())
        )
        report = engine.serve_trace(list(live)[:100])
        assert report.total_retries == 0
        assert report.total_failed_reads == 0
        assert report.total_missing_keys == 0
        assert report.degraded_queries == 0
        assert report.coverage() == 1.0


class TestDegradedServing:
    def test_transient_errors_recovered_by_retries(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                fault_plan=FaultPlan(seed=7 + FAULT_SEED, read_error_rate=0.05)
            ),
        )
        report = engine.serve_trace(list(live))
        assert report.total_retries > 0
        assert report.coverage() > 0.99
        assert engine.fault_counters["read_error"] > 0

    def test_heavy_faults_degrade_without_raising(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        engine = ServingEngine(
            maxembed_layout_small,
            EngineConfig(
                fault_plan=FaultPlan(
                    seed=7 + FAULT_SEED, read_error_rate=0.3, dead_page_rate=0.1
                ),
                retry=RetryPolicy(max_retries=1),
            ),
        )
        report = engine.serve_trace(list(live))  # must not raise
        assert report.total_failed_reads > 0
        assert report.degraded_queries > 0
        assert 0.0 < report.coverage() < 1.0
        assert (
            report.total_missing_keys + report.total_recovered_keys > 0
        )

    def test_per_query_accounting_identity(self, criteo_small):
        _, live = criteo_small
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                fault_plan=FaultPlan(
                    seed=3 + FAULT_SEED, read_error_rate=0.4, corrupt_rate=0.1
                ),
                retry=RetryPolicy(max_retries=1, backoff_us=10.0),
            ),
        )
        for seed_key in range(40):
            query = Query(tuple({seed_key % 16, (seed_key * 7) % 16}))
            result = engine.serve_query(query)
            assert result.requested_keys == (
                result.cache_hits + result.ssd_keys + result.missing_keys
            )
            assert result.degraded == (result.missing_keys > 0)

    def test_corrupt_reads_cost_bandwidth_but_recover(self):
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                fault_plan=FaultPlan(seed=5 + FAULT_SEED, corrupt_rate=0.5),
                retry=RetryPolicy(max_retries=8, backoff_us=5.0),
            ),
        )
        clean = ServingEngine(
            replicated_layout(), EngineConfig(cache_ratio=0.0)
        )
        query = Query(tuple(range(16)))
        faulty_result = engine.serve_query(query)
        clean_result = clean.serve_query(query)
        assert faulty_result.missing_keys == 0
        # Wasted transfers show up as extra page reads and extra latency.
        assert faulty_result.pages_read > clean_result.pages_read
        assert faulty_result.latency_us > clean_result.latency_us


class TestDifferentialRecovery:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        dead_rate=st.sampled_from([0.2, 0.45, 0.7]),
        queries=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=15),
                min_size=1,
                max_size=8,
                unique=True,
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_dead_pages_lose_exactly_the_unrecoverable_keys(
        self, seed, dead_rate, queries
    ):
        """Replica-aware recovery is exact, never lossy, never lucky.

        Dead pages are persistent and retry-independent, so the set of
        servable keys is fully determined: a key survives iff at least
        one of its holder pages is alive.  The engine must serve exactly
        those keys and report exactly the others missing.
        """
        plan = FaultPlan(seed=seed ^ FAULT_SEED, dead_page_rate=dead_rate)
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                fault_plan=plan,
                retry=RetryPolicy(max_retries=0),
            ),
        )
        for keys in queries:
            expected_missing = sum(
                1
                for key in keys
                if all(plan.page_is_dead(p) for p in holders(key))
            )
            result = engine.serve_query(Query(tuple(keys)))
            assert result.missing_keys == expected_missing
            assert result.ssd_keys == len(keys) - expected_missing

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        error_rate=st.sampled_from([0.1, 0.3, 0.6]),
        keys=st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=10,
            unique=True,
        ),
    )
    def test_transient_faults_never_silently_drop_keys(
        self, seed, error_rate, keys
    ):
        """Whatever the fault draw, every requested key is accounted for."""
        engine = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                fault_plan=FaultPlan(
                    seed=seed ^ FAULT_SEED,
                    read_error_rate=error_rate,
                    corrupt_rate=error_rate / 4,
                ),
                retry=RetryPolicy(max_retries=1, backoff_us=10.0),
            ),
        )
        fault_free = ServingEngine(
            replicated_layout(), EngineConfig(cache_ratio=0.0)
        )
        query = Query(tuple(keys))
        result = engine.serve_query(query)
        reference = fault_free.serve_query(query)
        assert result.requested_keys == reference.requested_keys
        assert (
            result.cache_hits + result.ssd_keys + result.missing_keys
            == result.requested_keys
        )
        # The fault-free engine serves everything; the faulty one serves
        # a subset and reports the difference, never more, never negative.
        assert reference.missing_keys == 0
        assert 0 <= result.missing_keys <= result.requested_keys
        # Identical plans replay identically (determinism of the draw).
        replay = ServingEngine(
            replicated_layout(),
            EngineConfig(
                cache_ratio=0.0,
                fault_plan=FaultPlan(
                    seed=seed ^ FAULT_SEED,
                    read_error_rate=error_rate,
                    corrupt_rate=error_rate / 4,
                ),
                retry=RetryPolicy(max_retries=1, backoff_us=10.0),
            ),
        ).serve_query(query)
        assert replay == result
