"""Tests for the greedy marginal-benefit replication extension."""

import pytest

from repro import ConfigError, ShpConfig, ShpPartitioner
from repro.hypergraph import Hypergraph, build_weighted_hypergraph
from repro.metrics import evaluate_placement
from repro.replication import (
    ConnectivityPriorityStrategy,
    GreedyBenefitStrategy,
)
from repro.replication.base import ReplicationStrategy


@pytest.fixture
def strategy():
    return GreedyBenefitStrategy(ShpPartitioner(ShpConfig(seed=0)))


class TestGreedyBenefit:
    def test_zero_ratio_no_replicas(self, strategy, small_graph):
        layout = strategy.build_layout(small_graph, 16, 0.0)
        assert layout.num_replica_pages == 0

    def test_budget_respected(self, strategy, small_graph):
        for ratio in (0.1, 0.4):
            layout = strategy.build_layout(small_graph, 16, ratio)
            budget = ReplicationStrategy.replica_page_budget(
                small_graph.num_vertices, 16, ratio
            )
            assert layout.num_replica_pages <= budget

    def test_rejects_negative_ratio(self, strategy, small_graph):
        with pytest.raises(ConfigError):
            strategy.build_layout(small_graph, 16, -0.2)

    def test_pages_have_no_duplicates(self, strategy, small_graph):
        layout = strategy.build_layout(small_graph, 16, 0.4)
        replica_sets = [
            frozenset(layout.page(p))
            for p in range(layout.num_base_pages, layout.num_pages)
        ]
        assert len(replica_sets) == len(set(replica_sets))

    def test_prices_marginal_not_absolute(self):
        # Two hub vertices share the same heavy pair partners; a one-shot
        # score would replicate both, the marginal greedy only needs the
        # pages that add NEW co-locations.
        edges = [(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)] * 3
        graph = Hypergraph(6, edges)
        strategy = GreedyBenefitStrategy(ShpPartitioner(ShpConfig(seed=0)))
        result = strategy.partitioner.partition(graph, 2)
        pages = strategy._greedy_pages(graph, result.assignment, 2, budget=4)
        # No emitted page may duplicate an already-co-located pair only.
        seen = set()
        for page in pages:
            assert frozenset(page) not in seen
            seen.add(frozenset(page))

    def test_beats_or_matches_paper_strategy(self, criteo_small):
        history, live = criteo_small
        graph = build_weighted_hypergraph(history)
        partitioner = ShpPartitioner(ShpConfig(max_iterations=6, seed=0))
        paper = ConnectivityPriorityStrategy(partitioner).build_layout(
            graph, 16, 0.4
        )
        greedy = GreedyBenefitStrategy(partitioner).build_layout(
            graph, 16, 0.4
        )
        paper_bw = evaluate_placement(paper, live).effective_fraction()
        greedy_bw = evaluate_placement(greedy, live).effective_fraction()
        assert greedy_bw >= paper_bw * 0.98

    def test_pair_weights(self):
        graph = Hypergraph(4, [(0, 1, 2)], weights=[3])
        weights = GreedyBenefitStrategy._pair_weights(graph)
        assert weights[frozenset((0, 1))] == 3
        assert weights[frozenset((1, 2))] == 3
        assert len(weights) == 3

    def test_lazy_requeue_returns_true_max(self):
        # Construct overlapping candidates: after taking the best page,
        # the second's stale price must be refreshed before acceptance.
        edges = [(0, 1, 2)] * 5 + [(1, 2, 3)] * 4
        graph = Hypergraph(4, edges)
        strategy = GreedyBenefitStrategy(ShpPartitioner(ShpConfig(seed=0)))
        result = strategy.partitioner.partition(graph, 2)
        pages = strategy._greedy_pages(graph, result.assignment, 2, budget=2)
        # Greedy must still emit valid, distinct, positive-benefit pages.
        assert 1 <= len(pages) <= 2
        assert len({frozenset(p) for p in pages}) == len(pages)
