"""Tests for repro.workloads.adapters: real-log parsers."""

import pytest

from repro import WorkloadError
from repro.workloads import hash_feature, parse_avazu_csv, parse_criteo_tsv
from repro.workloads.adapters import (
    CRITEO_NUM_CATEGORICAL,
    CRITEO_NUM_INTEGER,
)


def criteo_line(categoricals):
    label = "1"
    integers = ["5"] * CRITEO_NUM_INTEGER
    cats = list(categoricals) + [""] * (
        CRITEO_NUM_CATEGORICAL - len(categoricals)
    )
    return "\t".join([label] + integers + cats)


class TestHashFeature:
    def test_deterministic_across_calls(self):
        assert hash_feature(0, "abc", 100) == hash_feature(0, "abc", 100)

    def test_feature_index_separates_spaces(self):
        # The same raw value in different features must not be forced to
        # the same bucket.
        values = [hash_feature(i, "same", 100000) for i in range(20)]
        assert len(set(values)) > 1

    def test_bucket_range(self):
        for value in ("a", "b", "", "0x1f"):
            assert 0 <= hash_feature(3, value, 17) < 17

    def test_rejects_bad_buckets(self):
        with pytest.raises(WorkloadError):
            hash_feature(0, "x", 0)


class TestCriteoParser:
    def test_parses_records(self):
        lines = [
            criteo_line(["aa", "bb"]),
            criteo_line(["aa", "cc"]),
        ]
        trace = parse_criteo_tsv(lines, buckets_per_feature=50)
        assert len(trace) == 2
        assert trace.num_keys == CRITEO_NUM_CATEGORICAL * 50
        # Both records share feature-0 value "aa" -> same key.
        assert trace.queries[0].keys[0] == trace.queries[1].keys[0]

    def test_empty_values_skipped(self):
        trace = parse_criteo_tsv(
            [criteo_line(["aa"])], buckets_per_feature=10
        )
        assert len(trace.queries[0]) == 1

    def test_feature_ranges_disjoint(self):
        lines = [criteo_line(["v"] * CRITEO_NUM_CATEGORICAL)]
        trace = parse_criteo_tsv(lines, buckets_per_feature=10)
        keys = trace.queries[0].keys
        # One key per feature, each in its own bucket range.
        assert len(keys) == CRITEO_NUM_CATEGORICAL
        for feature_index, key in enumerate(sorted(keys)):
            assert feature_index * 10 <= key < (feature_index + 1) * 10

    def test_max_records(self):
        lines = [criteo_line(["a"]), criteo_line(["b"]), criteo_line(["c"])]
        trace = parse_criteo_tsv(lines, max_records=2)
        assert len(trace) == 2

    def test_malformed_record_rejected(self):
        with pytest.raises(WorkloadError, match="expected"):
            parse_criteo_tsv(["1\t2\t3"])

    def test_no_usable_records(self):
        with pytest.raises(WorkloadError, match="no usable"):
            parse_criteo_tsv([criteo_line([])])

    def test_blank_lines_skipped(self):
        lines = ["", criteo_line(["a"]), "   "]
        # Blank and whitespace-only lines are ignored by the reader.
        trace = parse_criteo_tsv(lines)
        assert len(trace) == 1

    def test_bad_args(self):
        with pytest.raises(WorkloadError):
            parse_criteo_tsv([criteo_line(["a"])], buckets_per_feature=0)
        with pytest.raises(WorkloadError):
            parse_criteo_tsv([criteo_line(["a"])], max_records=0)


class TestAvazuParser:
    HEADER = "id,click,hour,site_id,site_domain,site_category,app_id,app_domain,app_category,device_id,device_ip,device_model"

    def row(self, site="s1", device="d1"):
        return f"100,0,14102100,{site},dom,cat,app,adom,acat,{device},ip,model"

    def test_parses_records(self):
        trace = parse_avazu_csv(
            [self.HEADER, self.row(), self.row(site="s2")],
            buckets_per_feature=40,
        )
        assert len(trace) == 2
        assert trace.num_keys == 9 * 40

    def test_shared_values_shared_keys(self):
        trace = parse_avazu_csv(
            [self.HEADER, self.row(device="dX"), self.row(device="dX")]
        )
        a, b = trace.queries
        assert set(a.keys) & set(b.keys)

    def test_missing_column_rejected(self):
        with pytest.raises(WorkloadError, match="missing column"):
            parse_avazu_csv(["id,click,hour", "1,0,14102100"])

    def test_empty_input_rejected(self):
        with pytest.raises(WorkloadError, match="empty"):
            parse_avazu_csv([])

    def test_ragged_record_rejected(self):
        with pytest.raises(WorkloadError, match="expected"):
            parse_avazu_csv([self.HEADER, "1,0,3"])

    def test_pipeline_to_offline_phase(self):
        # End-to-end: parsed trace drives the full offline phase.
        from repro import MaxEmbedConfig, ShpConfig
        from repro.core import build_offline_layout

        rows = [self.HEADER] + [
            self.row(site=f"s{i % 5}", device=f"d{i % 7}")
            for i in range(40)
        ]
        trace = parse_avazu_csv(rows, buckets_per_feature=20)
        layout = build_offline_layout(
            trace,
            MaxEmbedConfig(
                replication_ratio=0.1,
                shp=ShpConfig(max_iterations=2, seed=0),
            ),
        )
        assert layout.num_keys == trace.num_keys
