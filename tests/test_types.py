"""Tests for repro.types: Query, QueryTrace, EmbeddingSpec, ReplicationConfig."""

import pytest

from repro import ConfigError, EmbeddingSpec, Query, QueryTrace
from repro.types import ReplicationConfig, as_queries


class TestQuery:
    def test_holds_keys_in_order(self):
        q = Query((3, 1, 2))
        assert q.keys == (3, 1, 2)
        assert len(q) == 3
        assert list(q) == [3, 1, 2]

    def test_unique_keys_preserves_first_appearance(self):
        q = Query((5, 1, 5, 2, 1))
        assert q.unique_keys() == (5, 1, 2)

    def test_of_builds_from_iterable(self):
        assert Query.of(iter([1, 2])).keys == (1, 2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Query(())

    def test_rejects_negative_keys(self):
        with pytest.raises(ConfigError):
            Query((1, -2))

    def test_is_hashable_and_equal_by_value(self):
        assert Query((1, 2)) == Query((1, 2))
        assert hash(Query((1, 2))) == hash(Query((1, 2)))


class TestEmbeddingSpec:
    def test_defaults_match_paper(self):
        spec = EmbeddingSpec()
        assert spec.dim == 64
        assert spec.page_size == 4096
        assert spec.embedding_bytes == 256
        assert spec.slots_per_page == 16

    @pytest.mark.parametrize(
        "dim,slots", [(32, 32), (64, 16), (128, 8), (16, 64)]
    )
    def test_slots_per_page_follows_dim(self, dim, slots):
        assert EmbeddingSpec(dim=dim).slots_per_page == slots

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ConfigError):
            EmbeddingSpec(dim=0)

    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(ConfigError):
            EmbeddingSpec(page_size=-1)

    def test_rejects_embedding_larger_than_page(self):
        with pytest.raises(ConfigError):
            EmbeddingSpec(dim=4096, page_size=4096)


class TestReplicationConfig:
    def test_defaults(self):
        config = ReplicationConfig()
        assert config.ratio == 0.1
        assert config.index_limit is None

    def test_rejects_negative_ratio(self):
        with pytest.raises(ConfigError):
            ReplicationConfig(ratio=-0.1)

    def test_rejects_zero_index_limit(self):
        with pytest.raises(ConfigError):
            ReplicationConfig(index_limit=0)


class TestQueryTrace:
    def test_append_and_iterate(self):
        trace = QueryTrace(10)
        trace.append(Query((1, 2)))
        trace.append(Query((3,)))
        assert len(trace) == 2
        assert [q.keys for q in trace] == [(1, 2), (3,)]

    def test_rejects_out_of_range_keys(self):
        trace = QueryTrace(4)
        with pytest.raises(ConfigError):
            trace.append(Query((4,)))

    def test_rejects_out_of_range_in_constructor(self):
        with pytest.raises(ConfigError):
            QueryTrace(2, [Query((5,))])

    def test_rejects_non_query_items(self):
        with pytest.raises(ConfigError):
            QueryTrace(4, [(1, 2)])

    def test_rejects_nonpositive_num_keys(self):
        with pytest.raises(ConfigError):
            QueryTrace(0)

    def test_mean_query_length(self):
        trace = QueryTrace(10, [Query((1, 2)), Query((3, 4, 5, 6))])
        assert trace.mean_query_length() == 3.0

    def test_mean_query_length_empty(self):
        assert QueryTrace(10).mean_query_length() == 0.0

    def test_split_halves(self):
        trace = QueryTrace(10, [Query((i,)) for i in range(10)])
        head, tail = trace.split(0.3)
        assert len(head) == 3
        assert len(tail) == 7
        assert head.num_keys == tail.num_keys == 10

    def test_split_rejects_degenerate_fraction(self):
        trace = QueryTrace(10, [Query((1,))])
        with pytest.raises(ConfigError):
            trace.split(0.0)
        with pytest.raises(ConfigError):
            trace.split(1.0)


def test_as_queries_converts_sequences():
    queries = as_queries([[1, 2], (3,)])
    assert [q.keys for q in queries] == [(1, 2), (3,)]
