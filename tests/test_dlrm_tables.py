"""Tests for repro.dlrm.tables: multi-table key-space mapping."""

import pytest

from repro import ConfigError
from repro.dlrm import TableSet, TableSpec


@pytest.fixture
def tables():
    return TableSet(
        [
            TableSpec("user", 100),
            TableSpec("item", 500),
            TableSpec("context", 50),
        ]
    )


class TestTableSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TableSpec("", 10)
        with pytest.raises(ConfigError):
            TableSpec("x", 0)


class TestTableSet:
    def test_geometry(self, tables):
        assert tables.num_tables == 3
        assert tables.total_keys == 650
        assert [t.name for t in tables.tables()] == [
            "user",
            "item",
            "context",
        ]

    def test_offsets_contiguous(self, tables):
        assert tables.offset("user") == 0
        assert tables.offset("item") == 100
        assert tables.offset("context") == 600

    def test_global_key(self, tables):
        assert tables.global_key("user", 0) == 0
        assert tables.global_key("item", 7) == 107
        assert tables.global_key("context", 49) == 649

    def test_global_key_range_checked(self, tables):
        with pytest.raises(ConfigError):
            tables.global_key("user", 100)
        with pytest.raises(ConfigError):
            tables.global_key("user", -1)
        with pytest.raises(ConfigError):
            tables.global_key("ghost", 0)

    def test_resolve_round_trip(self, tables):
        for table, local in (("user", 5), ("item", 499), ("context", 0)):
            key = tables.global_key(table, local)
            assert tables.resolve(key) == (table, local)

    def test_resolve_range_checked(self, tables):
        with pytest.raises(ConfigError):
            tables.resolve(650)
        with pytest.raises(ConfigError):
            tables.resolve(-1)

    def test_from_cardinalities(self):
        ts = TableSet.from_cardinalities({"a": 4, "b": 6})
        assert ts.total_keys == 10
        assert ts.offset("b") == 4

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ConfigError):
            TableSet([TableSpec("a", 1), TableSpec("a", 2)])
        with pytest.raises(ConfigError):
            TableSet([])


class TestQueryBuilding:
    def test_build_query_merges_tables(self, tables):
        query = tables.build_query(
            {"user": [3], "item": [10, 20], "context": [1]}
        )
        assert set(query.keys) == {3, 110, 120, 601}

    def test_build_query_rejects_empty(self, tables):
        with pytest.raises(ConfigError):
            tables.build_query({"user": []})

    def test_split_result_regroups(self, tables):
        vectors = {3: "u3", 110: "i10", 601: "c1"}
        grouped = tables.split_result(vectors)
        assert grouped["user"] == {3: "u3"}
        assert grouped["item"] == {10: "i10"}
        assert grouped["context"] == {1: "c1"}

    def test_end_to_end_with_store(self, criteo_small):
        # Carve the small trace's key space into three tables and serve a
        # cross-table query through a real store.
        import numpy as np

        from repro import MaxEmbedConfig, ShpConfig
        from repro.core import MaxEmbedStore

        history, _ = criteo_small
        n = history.num_keys
        tables = TableSet.from_cardinalities(
            {"user": n // 4, "item": n // 2, "context": n - n // 4 - n // 2}
        )
        assert tables.total_keys == n
        table = np.random.default_rng(0).normal(size=(n, 64)).astype(
            np.float32
        )
        store = MaxEmbedStore.build(
            history,
            MaxEmbedConfig(shp=ShpConfig(max_iterations=4, seed=0)),
            table=table,
        )
        query = tables.build_query(
            {"user": [1, 2], "item": [0, 3], "context": [5]}
        )
        vectors = store.lookup(query)
        grouped = tables.split_result(vectors)
        assert set(grouped["user"]) == {1, 2}
        assert set(grouped["item"]) == {0, 3}
        assert set(grouped["context"]) == {5}
        for local_id, vec in grouped["item"].items():
            global_key = tables.global_key("item", local_id)
            assert np.allclose(vec, table[global_key])
