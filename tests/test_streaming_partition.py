"""Tests for repro.partition.streaming: one-pass bootstrap placement."""

import pytest

from repro import PartitionError, RandomPartitioner
from repro.hypergraph import Hypergraph
from repro.partition import (
    ShpConfig,
    ShpPartitioner,
    StreamingPartitioner,
    fanout_objective,
)


class TestStreamingPartitioner:
    def test_valid_and_capacity_bounded(self, small_graph):
        result = StreamingPartitioner().partition(small_graph, 16)
        assert len(result.assignment) == small_graph.num_vertices
        assert max(result.cluster_sizes()) <= 16

    def test_co_edge_vertices_placed_together(self):
        g = Hypergraph(8, [(0, 1, 2, 3), (4, 5, 6, 7)])
        result = StreamingPartitioner().partition(g, 4)
        assert len({result.assignment[v] for v in (0, 1, 2, 3)}) == 1
        assert len({result.assignment[v] for v in (4, 5, 6, 7)}) == 1

    def test_beats_random(self, small_graph):
        streaming = StreamingPartitioner().partition(small_graph, 16)
        random_result = RandomPartitioner(seed=0).partition(small_graph, 16)
        assert fanout_objective(
            small_graph, streaming.assignment
        ) < fanout_objective(small_graph, random_result.assignment)

    def test_below_offline_quality(self, small_graph):
        # Streaming is the bootstrap, not the destination.
        streaming = StreamingPartitioner().partition(small_graph, 16)
        shp = ShpPartitioner(ShpConfig(seed=0)).partition(small_graph, 16)
        assert fanout_objective(
            small_graph, shp.assignment
        ) <= fanout_objective(small_graph, streaming.assignment)

    def test_isolated_vertices_fill_slots(self):
        g = Hypergraph(6, [(0, 1)])
        result = StreamingPartitioner().partition(g, 2)
        assert all(c >= 0 for c in result.assignment)
        assert max(result.cluster_sizes()) <= 2

    def test_deterministic(self, small_graph):
        a = StreamingPartitioner().partition(small_graph, 16)
        b = StreamingPartitioner().partition(small_graph, 16)
        assert a.assignment == b.assignment

    def test_balance_weight_spreads_load(self):
        # A chain of overlapping edges: with zero balance pressure,
        # affinity packs one cluster solid before opening the next.
        edges = [(i, i + 1) for i in range(15)]
        g = Hypergraph(16, edges)
        greedy = StreamingPartitioner(balance_weight=0.0).partition(g, 8)
        spread = StreamingPartitioner(balance_weight=4.0).partition(g, 8)
        assert max(greedy.cluster_sizes()) >= max(spread.cluster_sizes())

    def test_rejects_negative_balance_weight(self):
        with pytest.raises(PartitionError):
            StreamingPartitioner(balance_weight=-1.0)

    def test_single_cluster(self):
        g = Hypergraph(3, [(0, 1, 2)])
        result = StreamingPartitioner().partition(g, 4)
        assert result.num_clusters == 1

    def test_finer_cluster_request(self, small_graph):
        finer = small_graph.num_vertices // 16 + 5
        result = StreamingPartitioner().partition(
            small_graph, 16, num_clusters=finer
        )
        assert result.num_clusters == finer
