"""Tests for repro.core.persist: deployment bundles."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    EmbeddingSpec,
    MaxEmbedConfig,
    P4510,
    Query,
    ShpConfig,
)
from repro.core import MaxEmbedStore, load_store, save_store
from repro.core.persist import config_from_dict, config_to_dict
from repro.serving import CpuCostModel


@pytest.fixture
def rich_config():
    return MaxEmbedConfig(
        spec=EmbeddingSpec(dim=32, page_size=2048),
        replication_ratio=0.25,
        strategy="maxembed",
        partitioner="shp",
        shp=ShpConfig(max_iterations=5, kl_passes=3, seed=11),
        index_limit=7,
        cache_ratio=0.15,
        profile=P4510,
        raid_members=2,
        selector="greedy",
        executor="serial",
        threads=3,
        cost_model=CpuCostModel(sort_per_key_us=0.07),
        seed=9,
    )


class TestConfigRoundTrip:
    def test_round_trip_preserves_everything(self, rich_config):
        rebuilt = config_from_dict(config_to_dict(rich_config))
        assert rebuilt == rich_config

    def test_default_config_round_trips(self):
        config = MaxEmbedConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_version_check(self, rich_config):
        data = config_to_dict(rich_config)
        data["version"] = 99
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_unregistered_profile_rejected(self):
        from repro.ssd import SsdProfile

        config = MaxEmbedConfig(
            profile=SsdProfile("custom", 1.0, 1.0)
        )
        with pytest.raises(ConfigError, match="registry"):
            config_to_dict(config)


class TestStoreBundle:
    def build_store(self, criteo_small, with_table):
        history, _ = criteo_small
        config = MaxEmbedConfig(
            replication_ratio=0.2,
            shp=ShpConfig(max_iterations=4, seed=0),
        )
        table = None
        if with_table:
            table = (
                np.random.default_rng(0)
                .normal(size=(history.num_keys, 64))
                .astype(np.float32)
            )
        return MaxEmbedStore.build(history, config, table=table), table

    def test_round_trip_without_table(self, criteo_small, tmp_path):
        store, _ = self.build_store(criteo_small, with_table=False)
        save_store(store, tmp_path / "bundle")
        loaded = load_store(tmp_path / "bundle")
        assert loaded.layout.pages() == store.layout.pages()
        assert loaded.config == store.config
        result = loaded.serve(Query((0, 1, 2)))
        assert result.requested_keys == 3

    def test_round_trip_with_table(self, criteo_small, tmp_path):
        store, table = self.build_store(criteo_small, with_table=True)
        save_store(store, tmp_path / "bundle")
        loaded = load_store(tmp_path / "bundle")
        vectors = loaded.lookup(Query((3, 5)))
        assert np.allclose(vectors[3], table[3])
        assert np.allclose(vectors[5], table[5])

    def test_serving_equivalence(self, criteo_small, tmp_path):
        store, _ = self.build_store(criteo_small, with_table=False)
        save_store(store, tmp_path / "bundle")
        loaded = load_store(tmp_path / "bundle")
        _, live = criteo_small
        original = store.serve_trace(live)
        restored = loaded.serve_trace(live)
        assert original.total_pages_read == restored.total_pages_read
        assert original.makespan_us == restored.makespan_us

    def test_load_missing_bundle(self, tmp_path):
        with pytest.raises(ConfigError, match="not a store bundle"):
            load_store(tmp_path / "nowhere")

    def test_load_malformed_config(self, criteo_small, tmp_path):
        store, _ = self.build_store(criteo_small, with_table=False)
        bundle = save_store(store, tmp_path / "bundle")
        (bundle / "config.json").write_text("{broken")
        with pytest.raises(ConfigError, match="malformed"):
            load_store(bundle)
