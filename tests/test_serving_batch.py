"""Tests for repro.serving.batch: cross-query deduplicated serving."""

import pytest

from repro import EngineConfig, PageLayout, Query, ServingEngine, ServingError
from repro.serving import BatchServer, batching_summary


@pytest.fixture
def engine():
    layout = PageLayout(
        num_keys=8,
        capacity=4,
        pages=[(0, 1, 2, 3), (4, 5, 6, 7), (0, 4)],
        num_base_pages=2,
    )
    return ServingEngine(layout, EngineConfig(cache_ratio=0.0))


class TestBatchServer:
    def test_dedup_counts(self, engine):
        server = BatchServer(engine)
        result = server.serve_batch(
            [Query((0, 1)), Query((1, 2)), Query((0, 2))]
        )
        assert result.num_queries == 3
        assert result.distinct_keys == 3  # {0, 1, 2}
        assert result.duplicate_keys == 3
        assert result.dedup_ratio() == pytest.approx(0.5)

    def test_single_read_serves_shared_page(self, engine):
        server = BatchServer(engine)
        result = server.serve_batch([Query((0, 1)), Query((2, 3))])
        assert result.pages_read == 1  # both queries live on page 0

    def test_batching_reads_fewer_pages_than_individual(self, engine):
        queries = [Query((0, 1)), Query((2, 3)), Query((0, 3))]
        batched = BatchServer(engine).serve_batch(queries)
        # Individually (no cache) this would read page 0 three times.
        assert batched.pages_read == 1

    def test_per_query_keys_preserved(self, engine):
        server = BatchServer(engine)
        result = server.serve_batch([Query((5, 5, 6)), Query((7,))])
        assert result.per_query_keys == ((5, 6), (7,))

    def test_rejects_empty_batch(self, engine):
        with pytest.raises(ServingError):
            BatchServer(engine).serve_batch([])

    def test_serve_stream_chunks(self, engine):
        server = BatchServer(engine)
        queries = [Query((k,)) for k in range(8)]
        results = server.serve_stream(queries, batch_size=3)
        assert [r.num_queries for r in results] == [3, 3, 2]
        # Batches run back-to-back in simulated time.
        assert results[1].start_us == results[0].finish_us

    def test_serve_stream_rejects_bad_batch_size(self, engine):
        with pytest.raises(ServingError):
            BatchServer(engine).serve_stream([Query((0,))], batch_size=0)


class TestBatchingSummary:
    def test_summary_fields(self, engine):
        server = BatchServer(engine)
        queries = [Query((0, 1)), Query((0, 2)), Query((4, 5)), Query((4,))]
        results = server.serve_stream(queries, batch_size=2)
        summary = batching_summary(results)
        assert summary["batches"] == 2
        assert summary["queries"] == 4
        assert summary["duplicate_keys_removed"] == 2
        assert 0 < summary["dedup_ratio"] < 1
        assert summary["throughput_qps"] > 0

    def test_summary_rejects_empty(self):
        with pytest.raises(ServingError):
            batching_summary([])

    def test_batching_beats_unbatched_on_real_trace(
        self, maxembed_layout_small, criteo_small
    ):
        _, live = criteo_small
        queries = list(live)[:120]
        unbatched_engine = ServingEngine(
            maxembed_layout_small, EngineConfig(cache_ratio=0.0, threads=1)
        )
        unbatched = unbatched_engine.serve_trace(queries)
        batched_engine = ServingEngine(
            maxembed_layout_small, EngineConfig(cache_ratio=0.0, threads=1)
        )
        results = BatchServer(batched_engine).serve_stream(
            queries, batch_size=8
        )
        summary = batching_summary(results)
        assert summary["pages_read"] < unbatched.total_pages_read
