"""Cluster subsystem: planners, per-shard pipeline, router, persistence."""

import pytest

from repro import (
    ConfigError,
    EngineConfig,
    MaxEmbedConfig,
    Query,
    QueryTrace,
    ServingError,
    ShpConfig,
    build_sharded_layout,
    load_sharded_layout,
    make_planner,
    save_sharded_layout,
)
from repro.cluster import (
    SHARD_STRATEGIES,
    ClusterEngine,
    CoOccurrencePlanner,
    FrequencyAwarePlanner,
    ModuloHashPlanner,
    ShardPlan,
    project_trace,
)


@pytest.fixture
def two_community_trace() -> QueryTrace:
    """8 keys in two co-occurrence communities, one hotter than the other."""
    queries = (
        [Query((0, 1, 2, 3))] * 6
        + [Query((4, 5, 6, 7))] * 4
        + [Query((0, 1))] * 3
        + [Query((6, 7))] * 2
    )
    return QueryTrace(8, queries)


class TestShardPlan:
    def test_local_global_round_trip(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 3)
        for key in range(plan.num_keys):
            shard = plan.shard_of(key)
            assert plan.global_id(shard, plan.local_id(key)) == key

    def test_rejects_empty_shard(self):
        with pytest.raises(ConfigError):
            ShardPlan(2, (0, 0, 0))  # shard 1 owns nothing

    def test_rejects_invalid_assignment(self):
        with pytest.raises(ConfigError):
            ShardPlan(2, (0, 5))

    def test_shard_sizes_and_imbalance(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 2)
        assert plan.shard_sizes() == [4, 4]
        assert plan.size_imbalance() == pytest.approx(1.0)
        assert plan.load_imbalance(two_community_trace) >= 1.0

    def test_mean_fanout_bounds(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 4)
        fanout = plan.mean_fanout(two_community_trace)
        assert 1.0 <= fanout <= 4.0


class TestPlanners:
    def test_modulo_assignment(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 3)
        assert all(
            plan.shard_of(k) == k % 3 for k in range(plan.num_keys)
        )

    def test_frequency_spreads_hot_keys(self):
        # Keys 0 and 1 are overwhelmingly hot; LPT packing must place
        # them on different shards.
        queries = [Query((0,))] * 50 + [Query((1,))] * 40 + [
            Query((2, 3, 4, 5))
        ]
        trace = QueryTrace(6, queries)
        plan = FrequencyAwarePlanner().plan(trace, 2)
        assert plan.shard_of(0) != plan.shard_of(1)
        # Key-count balance is capped at ceil(6/2) = 3 keys per shard.
        assert max(plan.shard_sizes()) <= 3

    def test_cooccurrence_keeps_communities_together(
        self, two_community_trace
    ):
        plan = CoOccurrencePlanner(seed=0).plan(two_community_trace, 2)
        assert len({plan.shard_of(k) for k in (0, 1, 2, 3)}) == 1
        assert len({plan.shard_of(k) for k in (4, 5, 6, 7)}) == 1
        assert plan.mean_fanout(two_community_trace) == pytest.approx(1.0)

    def test_cooccurrence_beats_modulo_on_fanout(self, two_community_trace):
        coo = CoOccurrencePlanner(seed=0).plan(two_community_trace, 2)
        mod = ModuloHashPlanner().plan(two_community_trace, 2)
        assert coo.mean_fanout(two_community_trace) < mod.mean_fanout(
            two_community_trace
        )

    def test_every_strategy_covers_every_key(self, two_community_trace):
        for strategy in SHARD_STRATEGIES:
            plan = make_planner(strategy).plan(two_community_trace, 2)
            assert plan.num_keys == two_community_trace.num_keys
            assert sum(plan.shard_sizes()) == plan.num_keys

    def test_rejects_more_shards_than_keys(self, two_community_trace):
        for strategy in SHARD_STRATEGIES:
            with pytest.raises(ConfigError):
                make_planner(strategy).plan(two_community_trace, 9)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError):
            make_planner("range")

    def test_registry_matches_config_validation(self):
        assert SHARD_STRATEGIES == MaxEmbedConfig._SHARD_STRATEGIES


class TestProjection:
    def test_projection_remaps_and_drops(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 2)
        shard0 = project_trace(two_community_trace, plan, 0)
        # Shard 0 owns the even keys; every query touches some of them.
        assert shard0.num_keys == 4
        assert len(shard0) == len(two_community_trace)
        for local_query, global_query in zip(shard0, two_community_trace):
            expected = [
                plan.local_id(k)
                for k in global_query.keys
                if plan.shard_of(k) == 0
            ]
            assert list(local_query.keys) == expected

    def test_projection_drops_untouched_queries(self):
        trace = QueryTrace(4, [Query((0, 2))] * 3 + [Query((1, 3))])
        plan = ModuloHashPlanner().plan(trace, 2)
        shard1 = project_trace(trace, plan, 1)  # odd keys
        assert len(shard1) == 1

    def test_projection_rejects_bad_shard(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 2)
        with pytest.raises(ConfigError):
            project_trace(two_community_trace, plan, 2)


class TestShardedBuild:
    def test_layout_per_shard_covers_its_keys(self, two_community_trace):
        config = MaxEmbedConfig(
            num_shards=2,
            shard_strategy="cooccurrence",
            shp=ShpConfig(max_iterations=4),
        )
        sharded = build_sharded_layout(two_community_trace, config)
        assert sharded.num_shards == 2
        for shard in range(2):
            assert (
                sharded.layouts[shard].num_keys
                == len(sharded.plan.shard_keys(shard))
            )
        assert sharded.total_pages() >= 2

    def test_untouched_shard_gets_sequential_fallback(self):
        # Only even keys are ever queried: shard 1 (odd keys) sees an
        # empty projected trace and must still store all its keys.
        trace = QueryTrace(8, [Query((0, 2, 4, 6))] * 4)
        config = MaxEmbedConfig(num_shards=2, shard_strategy="modulo")
        sharded = build_sharded_layout(trace, config)
        fallback = sharded.layouts[1]
        assert fallback.num_keys == 4
        assert fallback.num_replica_pages == 0

    def test_plan_override(self, two_community_trace):
        plan = ModuloHashPlanner().plan(two_community_trace, 2)
        sharded = build_sharded_layout(
            two_community_trace, MaxEmbedConfig(num_shards=2), plan=plan
        )
        assert sharded.plan is plan

    def test_plan_override_must_match_trace(self, two_community_trace):
        plan = ModuloHashPlanner().plan(QueryTrace(4, [Query((0, 1))]), 2)
        with pytest.raises(ConfigError):
            build_sharded_layout(two_community_trace, plan=plan)

    def test_config_validates_shard_fields(self):
        with pytest.raises(ConfigError):
            MaxEmbedConfig(num_shards=0)
        with pytest.raises(ConfigError):
            MaxEmbedConfig(shard_strategy="range")


class TestPersistence:
    def test_round_trip(self, two_community_trace, tmp_path):
        config = MaxEmbedConfig(num_shards=2, shard_strategy="frequency")
        sharded = build_sharded_layout(two_community_trace, config)
        path = tmp_path / "cluster.json"
        save_sharded_layout(sharded, path)
        loaded = load_sharded_layout(path)
        assert loaded.plan.assignment == sharded.plan.assignment
        assert loaded.plan.strategy == "frequency"
        assert [l.pages() for l in loaded.layouts] == [
            l.pages() for l in sharded.layouts
        ]

    def test_rejects_plain_layout_file(self, tmp_path):
        from repro.cluster import is_sharded_layout_file
        from repro.errors import PlacementError
        from repro.placement import PageLayout, save_layout

        path = tmp_path / "plain.json"
        save_layout(
            PageLayout(num_keys=2, capacity=2, pages=[(0, 1)]), path
        )
        assert not is_sharded_layout_file(path)
        with pytest.raises(PlacementError):
            load_sharded_layout(path)


class TestClusterEngine:
    @pytest.fixture
    def cluster(self, two_community_trace):
        config = MaxEmbedConfig(
            num_shards=2,
            shard_strategy="cooccurrence",
            shp=ShpConfig(max_iterations=4),
        )
        sharded = build_sharded_layout(two_community_trace, config)
        return ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))

    def test_scatter_covers_query(self, cluster):
        query = Query((0, 1, 4, 5))
        fragments = cluster.scatter(query)
        total = sum(len(f.keys) for f in fragments.values())
        assert total == 4
        for shard, fragment in fragments.items():
            for local in fragment.keys:
                assert (
                    cluster.plan.shard_of(
                        cluster.plan.global_id(shard, local)
                    )
                    == shard
                )

    def test_gathered_result_sums_shards(self, cluster):
        result = cluster.serve_query(Query((0, 1, 4, 5)))
        assert result.requested_keys == 4
        assert result.ssd_keys == 4
        assert result.pages_read >= 2  # at least one page per community

    def test_single_shard_query_stays_local(self, cluster):
        before = [e.device.stats.reads for e in cluster.engines]
        cluster.serve_query(Query((0, 1, 2)))
        after = [e.device.stats.reads for e in cluster.engines]
        touched = [a != b for a, b in zip(after, before)]
        assert sum(touched) == 1

    def test_serve_trace_reports_shard_metrics(
        self, cluster, two_community_trace
    ):
        report = cluster.serve_trace(two_community_trace)
        assert report.num_shards == 2
        assert report.strategy == "cooccurrence"
        assert sum(report.shard_queries) >= len(two_community_trace)
        assert sum(report.shard_pages_read) == report.report.total_pages_read
        assert len(report.fanouts) == len(two_community_trace)
        assert report.load_imbalance() >= 1.0
        assert report.mean_fanout() == pytest.approx(1.0)  # communities
        assert report.mean_straggler_us() == pytest.approx(0.0)
        assert report.throughput_qps() > 0

    def test_straggler_positive_under_fanout(self, two_community_trace):
        # Modulo splits every community query across both shards, so
        # some straggler gap must appear.
        config = MaxEmbedConfig(num_shards=2, shard_strategy="modulo")
        sharded = build_sharded_layout(two_community_trace, config)
        engine = ClusterEngine(sharded, EngineConfig(cache_ratio=0.0))
        report = engine.serve_trace(two_community_trace)
        assert report.mean_fanout() > 1.0
        assert report.mean_straggler_us() >= 0.0
        assert max(report.max_shard_latency_us) > 0.0

    def test_rejects_empty_trace(self, cluster):
        with pytest.raises(ServingError):
            cluster.serve_trace([])

    def test_warmup_must_leave_queries(self, cluster, two_community_trace):
        with pytest.raises(ServingError):
            cluster.serve_trace(
                two_community_trace,
                warmup_queries=len(two_community_trace),
            )

    def test_memory_overhead_sums_engines(self, cluster):
        assert cluster.memory_overhead_entries() == sum(
            e.memory_overhead_entries() for e in cluster.engines
        )

    def test_as_dict_json_round_trip(self, cluster, two_community_trace):
        import json

        report = cluster.serve_trace(two_community_trace)
        data = report.as_dict()
        assert json.loads(json.dumps(data)) == data
        for key in (
            "replicas",
            "failovers",
            "failover_rate",
            "hedges",
            "hedge_wins",
            "hedges_denied",
            "hedge_rate",
            "replica_probes",
            "replica_resyncs",
            "replica_transitions",
            "dead_replicas",
        ):
            assert key in data
        assert data["replicas"] == 1
        assert data["failovers"] == 0

    def test_replica_info_counters_match_report_fields(
        self, two_community_trace
    ):
        """Every live ``/metrics`` replica counter persists in as_dict.

        The field-compatibility contract: a dashboard built on the
        gateway's ``replica_info()`` counters can read historical
        ``ClusterReport.as_dict()`` records under the same names.
        """
        config = MaxEmbedConfig(
            num_shards=2,
            shard_strategy="cooccurrence",
            shp=ShpConfig(max_iterations=4),
        )
        sharded = build_sharded_layout(two_community_trace, config)
        engine = ClusterEngine(
            sharded, EngineConfig(cache_ratio=0.0, replicas=2)
        )
        report = engine.serve_trace(two_community_trace)
        data = report.as_dict()
        info = engine.replica_info()
        assert info is not None
        for counter, value in info["counters"].items():
            assert counter in data
            assert data[counter] == value
        assert data["replicas"] == info["num_replicas"] == 2
        assert sum(info["states"].values()) == 4  # 2 shards x 2 replicas
