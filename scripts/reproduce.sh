#!/usr/bin/env bash
# Reproduce everything: tests, the full figure/table benchmark suite, and
# the rendered result tables.
#
# Usage:
#   scripts/reproduce.sh            # full bench scale (~5 min benches)
#   REPRO_BENCH_SCALE=small scripts/reproduce.sh   # fast smoke (~30 s)
#
# Outputs:
#   test_output.txt          — full pytest run
#   bench_output.txt         — benchmark run (one bench per paper artifact)
#   benchmarks/results/*.txt — the regenerated tables/figures as text

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== installing (editable) =="
pip install -e . --no-build-isolation -q || python setup.py develop

echo "== unit / integration / property tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== regenerating every paper table and figure =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== contract benches (no pytest-benchmark fixture, skipped above) =="
# These carry their own pass/fail contracts and publish JSON results:
# selection/offline fast paths, degraded serving under faults, overload
# goodput, and the live service gateway vs the open-loop simulator.
python -m pytest -q -s \
    benchmarks/bench_selection.py \
    benchmarks/bench_offline.py \
    benchmarks/bench_faults.py \
    benchmarks/bench_overload.py \
    benchmarks/bench_service.py \
    2>&1 | tee bench_contract_output.txt

echo "== done; rendered artifacts: =="
ls benchmarks/results/
