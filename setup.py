"""Setup shim.

Offline environments without the ``wheel`` package cannot build PEP 660
editable wheels; this shim lets ``python setup.py develop`` (and therefore
``pip install -e . --no-build-isolation``'s legacy fallback) work there.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
